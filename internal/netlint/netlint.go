// Package netlint statically analyzes parsed SPICE decks and circuit
// netlists before any simulation is attempted. It predicts the failure
// modes that otherwise surface deep inside the MNA sweeper as opaque
// singular-matrix errors (floating nodes, voltage-source loops, driver
// conflicts), flags deck hygiene problems (mixed ground spellings,
// case-colliding node names, implausible element values) and checks the
// multi-configuration DFT structure itself (chain well-formedness, per-
// configuration signal-path continuity, structurally identical
// configurations that waste covering-problem columns).
//
// Every finding is a structured Diagnostic with a stable NLxxx code, a
// severity, the offending component and/or node, the deck line where
// available, a human message and a fix hint. Analysis is purely
// structural — no linear system is ever assembled — so linting a deck
// costs microseconds, not simulation time.
package netlint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"analogdft/internal/circuit"
	"analogdft/internal/spice"
)

// Severity grades a diagnostic.
type Severity int

// Severities, in increasing order of gravity. The zero value is reserved
// as "unset" so Report.add can fill in a check's default severity.
const (
	sevUnset Severity = iota
	// SevInfo marks advisory findings.
	SevInfo
	// SevWarning marks findings that waste effort or suggest a deck
	// typo but do not make the deck unsimulatable.
	SevWarning
	// SevError marks findings that predict simulation failure or that
	// make the DFT flow meaningless.
	SevError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts the lowercase severity names.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = SevInfo
	case "warning":
		*s = SevWarning
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("netlint: unknown severity %q", name)
	}
	return nil
}

// Diagnostic codes. Codes are stable across releases: tools and tests key
// on them, so new checks append new codes and retired checks leave holes.
const (
	// CodeNoGround: no component terminal connects to ground.
	CodeNoGround = "NL001"
	// CodeFloatingNode: a node attaches to a single terminal.
	CodeFloatingNode = "NL002"
	// CodeIsland: a node is not reachable from ground.
	CodeIsland = "NL003"
	// CodeVoltageLoop: a loop of voltage-defining branches.
	CodeVoltageLoop = "NL004"
	// CodeDriverConflict: a node fixed by two voltage drivers (or a
	// driver fighting ground).
	CodeDriverConflict = "NL005"
	// CodeGroundAlias: the deck mixes ground spellings (0, gnd, ...).
	CodeGroundAlias = "NL006"
	// CodeNodeCaseCollision: node names that differ only by case.
	CodeNodeCaseCollision = "NL007"
	// CodeNonPositiveValue: a passive element with value <= 0 (or NaN).
	CodeNonPositiveValue = "NL008"
	// CodeImplausibleValue: a passive value far outside physical range.
	CodeImplausibleValue = "NL009"
	// CodeMissingIO: primary input/output unset or not a circuit node.
	CodeMissingIO = "NL010"
	// CodeBadFaultTarget: a fault list names an unknown or non-passive
	// component.
	CodeBadFaultTarget = "NL011"
	// CodeBadChain: the DFT chain names an unknown, duplicate or
	// non-opamp component.
	CodeBadChain = "NL012"
	// CodeNoSignalPath: a DFT configuration has no structural
	// input→output signal path.
	CodeNoSignalPath = "NL013"
	// CodeIdenticalConfigs: configurations that are structurally
	// identical from the primary ports (wasted covering columns).
	CodeIdenticalConfigs = "NL014"
)

// CheckInfo describes one registered check for listings and docs.
type CheckInfo struct {
	// Code is the stable NLxxx identifier.
	Code string `json:"code"`
	// Name is the short kebab-case check name.
	Name string `json:"name"`
	// Severity is the default severity of the check's diagnostics.
	Severity Severity `json:"severity"`
	// Summary is a one-line description of what the check flags.
	Summary string `json:"summary"`
}

// checkTable is the registry of every check, in code order.
var checkTable = []CheckInfo{
	{CodeNoGround, "no-ground", SevError, "no component terminal connects to the ground reference (0/gnd/ground)"},
	{CodeFloatingNode, "floating-node", SevError, "a node attaches to only one component terminal, so its voltage is underdetermined"},
	{CodeIsland, "disconnected-island", SevError, "a node is not reachable from ground through any component, splitting the network"},
	{CodeVoltageLoop, "voltage-source-loop", SevError, "independent/controlled voltage sources form a loop, a structural MNA singularity"},
	{CodeDriverConflict, "driver-conflict", SevError, "two voltage drivers (opamp outputs, grounded sources) fix the same node voltage"},
	{CodeGroundAlias, "ground-alias-mix", SevWarning, "the deck mixes spellings of the ground node (e.g. both \"gnd\" and \"0\")"},
	{CodeNodeCaseCollision, "node-case-collision", SevWarning, "two distinct node names differ only by letter case, a likely typo"},
	{CodeNonPositiveValue, "non-positive-value", SevError, "a passive element has a zero, negative or non-finite value"},
	{CodeImplausibleValue, "implausible-value", SevWarning, "a passive value is far outside the physical range, suggesting a scale-suffix mistake"},
	{CodeMissingIO, "missing-io", SevError, "the primary input or output node is unset or absent from the circuit"},
	{CodeBadFaultTarget, "bad-fault-target", SevError, "a fault-list entry names a nonexistent or non-passive component"},
	{CodeBadChain, "bad-dft-chain", SevError, "the configurable-opamp chain names an unknown, duplicate or non-opamp component"},
	{CodeNoSignalPath, "no-signal-path", SevWarning, "a DFT configuration has no structural signal path from primary input to output"},
	{CodeIdenticalConfigs, "identical-configs", SevWarning, "DFT configurations are structurally identical seen from the primary ports"},
}

// Checks returns the registered checks in code order.
func Checks() []CheckInfo { return append([]CheckInfo(nil), checkTable...) }

// checkByCode maps code → registry entry.
var checkByCode = func() map[string]CheckInfo {
	m := make(map[string]CheckInfo, len(checkTable))
	for _, c := range checkTable {
		m[c.Code] = c
	}
	return m
}()

// Diagnostic is one structured finding.
type Diagnostic struct {
	// Code is the stable NLxxx identifier of the check that fired.
	Code string `json:"code"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Component names the offending component, when one is identifiable.
	Component string `json:"component,omitempty"`
	// Node names the offending node, when one is identifiable.
	Node string `json:"node,omitempty"`
	// Line is the 1-based deck line of the finding (0 when the circuit
	// was built programmatically or no single line applies).
	Line int `json:"line,omitempty"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Hint suggests a fix.
	Hint string `json:"hint,omitempty"`
}

// String renders "NL002 error [floating-node]: message (component R3, node x, line 7)".
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", d.Code, d.Severity)
	if info, ok := checkByCode[d.Code]; ok {
		fmt.Fprintf(&b, " [%s]", info.Name)
	}
	b.WriteString(": ")
	b.WriteString(d.Message)
	var loc []string
	if d.Component != "" {
		loc = append(loc, "component "+d.Component)
	}
	if d.Node != "" {
		loc = append(loc, "node "+d.Node)
	}
	if d.Line > 0 {
		loc = append(loc, fmt.Sprintf("line %d", d.Line))
	}
	if len(loc) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(loc, ", "))
	}
	return b.String()
}

// Source is the unit of analysis: a circuit with its DFT chain, plus the
// optional parsed deck (for line numbers and raw ground spellings) and an
// optional fault-target list to cross-check.
type Source struct {
	// Circuit is the netlist under analysis. Required.
	Circuit *circuit.Circuit
	// Chain lists the configurable opamps in test-chain order. Optional;
	// without it the DFT structure checks are skipped.
	Chain []string
	// Deck is the parsed deck the circuit came from. Optional; enables
	// line numbers and the ground-spelling check.
	Deck *spice.Deck
	// FaultTargets lists component names a fault list intends to
	// mutate. Optional; enables the fault-target check.
	FaultTargets []string
	// Name labels the report (deck path); defaults to the circuit name.
	Name string
}

// Report is the result of analyzing one source.
type Report struct {
	// Name labels the analyzed deck or circuit.
	Name string `json:"deck"`
	// Diagnostics holds every finding, sorted by code, then line, then
	// component and node.
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// add appends a diagnostic, defaulting its severity from the registry.
func (r *Report) add(d Diagnostic) {
	if d.Severity == sevUnset {
		if info, ok := checkByCode[d.Code]; ok {
			d.Severity = info.Severity
		}
	}
	r.Diagnostics = append(r.Diagnostics, d)
}

// Count returns the number of diagnostics at severity min or above.
func (r *Report) Count(min Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity >= min {
			n++
		}
	}
	return n
}

// Errors returns the number of error-severity diagnostics.
func (r *Report) Errors() int { return r.Count(SevError) }

// Warnings returns the number of warning-severity diagnostics.
func (r *Report) Warnings() int { return r.Count(SevWarning) - r.Count(SevError) }

// Clean reports whether the analysis produced no diagnostics at all.
func (r *Report) Clean() bool { return len(r.Diagnostics) == 0 }

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText writes one "<name>:<line>: <diagnostic>" line per finding,
// each followed by its fix hint.
func (r *Report) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics {
		pos := r.Name
		if d.Line > 0 {
			pos = fmt.Sprintf("%s:%d", r.Name, d.Line)
		}
		if _, err := fmt.Fprintf(w, "%s: %s\n", pos, d); err != nil {
			return err
		}
		if d.Hint != "" {
			if _, err := fmt.Fprintf(w, "\tfix: %s\n", d.Hint); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortDiagnostics orders findings for deterministic output.
func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		return a.Node < b.Node
	})
}

// Analyze runs every applicable check over the source and returns the
// report. It never simulates: all checks are graph- and value-structural.
func Analyze(src Source) *Report {
	rep := &Report{Name: src.Name}
	if rep.Name == "" && src.Circuit != nil {
		rep.Name = src.Circuit.Name
	}
	if src.Circuit == nil {
		rep.add(Diagnostic{Code: CodeMissingIO, Severity: SevError,
			Message: "no circuit to analyze", Hint: "pass a parsed deck or constructed circuit"})
		return rep
	}
	a := &analysis{src: src, ckt: src.Circuit, rep: rep}
	a.prepare()
	a.checkGround()
	a.checkFloatingNodes()
	a.checkIslands()
	a.checkVoltageLoops()
	a.checkDriverConflicts()
	a.checkGroundSpellings()
	a.checkCaseCollisions()
	a.checkValues()
	a.checkIO()
	a.checkFaultTargets()
	a.checkChain()
	sortDiagnostics(rep.Diagnostics)
	countDiagnostics(rep)
	return rep
}
