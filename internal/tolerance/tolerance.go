// Package tolerance grounds the paper's tolerance ε in a process model.
// §2 fixes ε "arbitrarily … at 10%" and notes it exists "to take into
// account possible fluctuations in the process environment"; this package
// derives ε from component tolerances instead: a deterministic Monte
// Carlo over process-only variation yields, per frequency, an envelope of
// the deviation |ΔT/T| a fault-free circuit can exhibit. Any fault whose
// deviation exceeds the envelope is distinguishable from process noise.
//
// The envelope can be collapsed to a scalar ε (the paper's usage) or fed
// to detect.Options.EpsProfile as a frequency-dependent threshold.
package tolerance

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
)

// ErrBadSpec is returned for invalid Monte Carlo specifications.
var ErrBadSpec = errors.New("tolerance: bad specification")

// Spec parameterizes the Monte Carlo tolerance analysis.
type Spec struct {
	// PassiveTol is the uniform relative tolerance of every passive
	// component (e.g. 0.01 for ±1%).
	PassiveTol float64
	// Samples is the number of Monte Carlo samples (default 200).
	Samples int
	// Seed seeds the deterministic RNG (default 1).
	Seed int64
	// Quantile in (0, 1] selects the per-frequency envelope quantile over
	// samples (default 1 = worst case).
	Quantile float64
}

func (s Spec) withDefaults() Spec {
	if s.Samples == 0 {
		s.Samples = 200
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Quantile == 0 {
		s.Quantile = 1
	}
	return s
}

// Validate checks the spec.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.PassiveTol < 0 || s.PassiveTol >= 1 {
		return fmt.Errorf("%w: passive tolerance %g", ErrBadSpec, s.PassiveTol)
	}
	if s.Samples < 1 {
		return fmt.Errorf("%w: %d samples", ErrBadSpec, s.Samples)
	}
	if s.Quantile <= 0 || s.Quantile > 1 {
		return fmt.Errorf("%w: quantile %g", ErrBadSpec, s.Quantile)
	}
	return nil
}

// Envelope returns, per grid frequency, the chosen quantile (over Monte
// Carlo samples) of the fault-free process deviation |ΔT/T|.
func Envelope(ckt *circuit.Circuit, grid []float64, spec Spec) ([]float64, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("%w: empty grid", analysis.ErrBadSweep)
	}
	nominal, err := analysis.SweepOnGrid(ckt, grid)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	passives := ckt.Passives()
	// samplesAt[i] collects the per-sample deviations at grid point i.
	samplesAt := make([][]float64, len(grid))
	for i := range samplesAt {
		samplesAt[i] = make([]float64, 0, spec.Samples)
	}
	for n := 0; n < spec.Samples; n++ {
		varied := ckt.Clone()
		for _, p := range passives {
			v, err := varied.Valued(p.Name())
			if err != nil {
				return nil, err
			}
			v.SetValue(v.Value() * (1 + spec.PassiveTol*(2*rng.Float64()-1)))
		}
		resp, err := analysis.SweepOnGrid(varied, grid)
		if err != nil {
			return nil, err
		}
		prof, err := analysis.RelativeDeviation(nominal, resp, 0)
		if err != nil {
			return nil, err
		}
		for i, r := range prof.Rel {
			if math.IsInf(r, 1) {
				r = math.MaxFloat64
			}
			samplesAt[i] = append(samplesAt[i], r)
		}
	}
	env := make([]float64, len(grid))
	for i, s := range samplesAt {
		sort.Float64s(s)
		k := int(math.Ceil(spec.Quantile*float64(len(s)))) - 1
		if k < 0 {
			k = 0
		}
		if k >= len(s) {
			k = len(s) - 1
		}
		env[i] = s[k]
	}
	return env, nil
}

// DeriveEps collapses the envelope over a region into the scalar ε the
// paper uses: the worst per-frequency envelope value times a safety
// margin (pass 1 for none). A fault deviating beyond this ε anywhere is
// distinguishable from process variation everywhere.
func DeriveEps(ckt *circuit.Circuit, region analysis.Region, points int, spec Spec, margin float64) (float64, error) {
	if err := region.Validate(); err != nil {
		return 0, err
	}
	if margin <= 0 {
		return 0, fmt.Errorf("%w: margin %g", ErrBadSpec, margin)
	}
	if points < 2 {
		points = 121
	}
	env, err := Envelope(ckt, region.Spec(points).Grid(), spec)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, e := range env {
		if e > worst {
			worst = e
		}
	}
	return worst * margin, nil
}

// Profile scales the envelope by a margin for use as
// detect.Options.EpsProfile (the per-frequency threshold).
func Profile(env []float64, margin float64) ([]float64, error) {
	if margin <= 0 {
		return nil, fmt.Errorf("%w: margin %g", ErrBadSpec, margin)
	}
	out := make([]float64, len(env))
	for i, e := range env {
		out[i] = e * margin
	}
	return out, nil
}
