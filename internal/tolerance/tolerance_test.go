package tolerance

import (
	"errors"
	"math"
	"testing"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
	"analogdft/internal/detect"
	"analogdft/internal/fault"
	"analogdft/internal/numeric"
)

func rcLowpass() *circuit.Circuit {
	c := circuit.New("rc")
	c.R("R1", "in", "out", 1e3)
	c.Cap("C1", "out", "0", 100e-9)
	c.Input, c.Output = "in", "out"
	return c
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{PassiveTol: -0.1},
		{PassiveTol: 1.0},
		{PassiveTol: 0.01, Samples: -3},
		{PassiveTol: 0.01, Quantile: 1.5},
		{PassiveTol: 0.01, Quantile: -0.2},
	}
	for _, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %+v accepted: %v", s, err)
		}
	}
	if err := (Spec{PassiveTol: 0.01}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestEnvelopeZeroTolerance(t *testing.T) {
	grid := numeric.LogSpace(10, 1e5, 11)
	env, err := Envelope(rcLowpass(), grid, Spec{PassiveTol: 0, Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range env {
		if e > 1e-12 {
			t.Fatalf("env[%d] = %g with zero tolerance", i, e)
		}
	}
}

func TestEnvelopeGrowsWithTolerance(t *testing.T) {
	grid := numeric.LogSpace(10, 1e6, 21)
	small, err := Envelope(rcLowpass(), grid, Spec{PassiveTol: 0.01, Samples: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Envelope(rcLowpass(), grid, Spec{PassiveTol: 0.05, Samples: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Compare at the corner, where sensitivity is highest.
	maxS, maxL := 0.0, 0.0
	for i := range grid {
		if small[i] > maxS {
			maxS = small[i]
		}
		if large[i] > maxL {
			maxL = large[i]
		}
	}
	if maxL <= maxS {
		t.Fatalf("5%% envelope (%g) not above 1%% envelope (%g)", maxL, maxS)
	}
	if maxS <= 0 {
		t.Fatal("1% envelope is zero")
	}
	// A ±1% component spread can cause at most ≈2% response deviation on
	// a first-order RC (sensitivity ≤ 1 per component, two components).
	if maxS > 0.05 {
		t.Fatalf("1%% envelope %g implausibly large", maxS)
	}
}

func TestEnvelopeDeterministic(t *testing.T) {
	grid := numeric.LogSpace(100, 1e5, 7)
	a, err := Envelope(rcLowpass(), grid, Spec{PassiveTol: 0.02, Samples: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Envelope(rcLowpass(), grid, Spec{PassiveTol: 0.02, Samples: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("envelope not deterministic at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestEnvelopeQuantile(t *testing.T) {
	grid := numeric.LogSpace(100, 1e5, 7)
	worst, err := Envelope(rcLowpass(), grid, Spec{PassiveTol: 0.05, Samples: 60, Seed: 3, Quantile: 1})
	if err != nil {
		t.Fatal(err)
	}
	median, err := Envelope(rcLowpass(), grid, Spec{PassiveTol: 0.05, Samples: 60, Seed: 3, Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range worst {
		if median[i] > worst[i] {
			t.Fatalf("median above worst case at %d", i)
		}
	}
}

func TestDeriveEps(t *testing.T) {
	region := analysis.Region{LoHz: 10, HiHz: 1e6}
	eps, err := DeriveEps(rcLowpass(), region, 31, Spec{PassiveTol: 0.05, Samples: 40, Seed: 9}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// ±5% parts: worst-case fault-free deviation ≈ 10% (both components at
	// the rail, sensitivity ≤ 1 each), ×1.2 margin ⇒ ε ≈ 12%.
	if eps < 0.02 || eps > 0.2 {
		t.Fatalf("derived ε = %g out of plausible range", eps)
	}
	// A 20% fault on R1 must still be detectable at this derived ε.
	faults := fault.List{{ID: "fR1", Component: "R1", Kind: fault.Deviation, Factor: 1.2}}
	row, err := detect.EvaluateCircuit(rcLowpass(), faults, detect.Options{Eps: eps, Points: 61, Region: region})
	if err != nil {
		t.Fatal(err)
	}
	if !row.Evals[0].Detectable {
		t.Fatalf("20%% fault undetectable at derived ε = %g", eps)
	}
}

func TestDeriveEpsErrors(t *testing.T) {
	region := analysis.Region{LoHz: 10, HiHz: 1e6}
	if _, err := DeriveEps(rcLowpass(), analysis.Region{LoHz: 5, HiHz: 1}, 11, Spec{PassiveTol: 0.01}, 1); err == nil {
		t.Error("bad region accepted")
	}
	if _, err := DeriveEps(rcLowpass(), region, 11, Spec{PassiveTol: 0.01}, 0); !errors.Is(err, ErrBadSpec) {
		t.Error("zero margin accepted")
	}
	if _, err := DeriveEps(rcLowpass(), region, 11, Spec{PassiveTol: -1}, 1); !errors.Is(err, ErrBadSpec) {
		t.Error("bad spec accepted")
	}
}

func TestProfile(t *testing.T) {
	p, err := Profile([]float64{0.01, 0.02}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-0.03) > 1e-12 || math.Abs(p[1]-0.06) > 1e-12 {
		t.Fatalf("profile = %v", p)
	}
	if _, err := Profile([]float64{0.01}, -1); !errors.Is(err, ErrBadSpec) {
		t.Error("bad margin accepted")
	}
}

// Integration: a frequency-dependent EpsProfile from the tolerance
// envelope suppresses detections that a tiny scalar ε would allow near
// the corner, where process variation itself is large.
func TestEpsProfileIntegration(t *testing.T) {
	ckt := rcLowpass()
	region := analysis.Region{LoHz: 10, HiHz: 1e6}
	const points = 41
	grid := region.Spec(points).Grid()
	env, err := Envelope(ckt, grid, Spec{PassiveTol: 0.05, Samples: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	profile, err := Profile(env, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Fault of the same magnitude as the process spread: indistinguishable
	// once the envelope is applied.
	faults := fault.List{{ID: "fR1", Component: "R1", Kind: fault.Deviation, Factor: 1.05}}
	loose, err := detect.EvaluateCircuit(ckt, faults, detect.Options{Eps: 0.001, Points: points, Region: region})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := detect.EvaluateCircuit(ckt, faults, detect.Options{
		Eps: 0.001, Points: points, Region: region, EpsProfile: profile,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Evals[0].Detectable {
		t.Fatal("5% fault invisible even at ε = 0.1%")
	}
	if strict.Evals[0].OmegaDet >= loose.Evals[0].OmegaDet {
		t.Fatalf("envelope did not shrink the detectable region: %g vs %g",
			strict.Evals[0].OmegaDet, loose.Evals[0].OmegaDet)
	}
	// A mismatched profile length is rejected.
	if _, err := detect.EvaluateCircuit(ckt, faults, detect.Options{
		Points: points + 1, Region: region, EpsProfile: profile,
	}); err == nil {
		t.Fatal("mismatched EpsProfile accepted")
	}
}
