package dft

import (
	"errors"
	"math/cmplx"
	"testing"
	"testing/quick"

	"analogdft/internal/circuit"
	"analogdft/internal/mna"
)

// cascade3 builds a cascade of three unity-gain inverting amplifiers:
// in → OP1 → OP2 → OP3 → out, overall gain −1.
func cascade3() *circuit.Circuit {
	c := circuit.New("cascade3")
	c.R("R1", "in", "s1", 1e3)
	c.R("R2", "s1", "v1", 1e3)
	c.OA("OP1", "0", "s1", "v1")
	c.R("R3", "v1", "s2", 1e3)
	c.R("R4", "s2", "v2", 1e3)
	c.OA("OP2", "0", "s2", "v2")
	c.R("R5", "v2", "s3", 1e3)
	c.R("R6", "s3", "v3", 1e3)
	c.OA("OP3", "0", "s3", "v3")
	c.Input, c.Output = "in", "v3"
	return c
}

func TestConfigurationBits(t *testing.T) {
	c := Configuration{Index: 5, N: 3} // binary 101: opamps 1 and 3 follower
	if !c.Follower(0) || c.Follower(1) || !c.Follower(2) {
		t.Fatalf("C5 followers wrong: %v %v %v", c.Follower(0), c.Follower(1), c.Follower(2))
	}
	if c.FollowerCount() != 2 {
		t.Fatalf("FollowerCount = %d", c.FollowerCount())
	}
	if c.Follower(-1) || c.Follower(3) {
		t.Fatal("out-of-range Follower must be false")
	}
}

func TestConfigurationVectorMatchesTable1(t *testing.T) {
	// Table 1 of the paper: C0=000 … C7=111 with C1="001", C5="101".
	want := []string{"000", "001", "010", "011", "100", "101", "110", "111"}
	for i, w := range want {
		c := Configuration{Index: i, N: 3}
		if got := c.Vector(); got != w {
			t.Errorf("C%d vector = %q, want %q", i, got, w)
		}
	}
}

func TestConfigurationPredicates(t *testing.T) {
	if !(Configuration{Index: 0, N: 3}).IsFunctional() {
		t.Error("C0 must be functional")
	}
	if (Configuration{Index: 1, N: 3}).IsFunctional() {
		t.Error("C1 must not be functional")
	}
	if !(Configuration{Index: 7, N: 3}).IsTransparent() {
		t.Error("C7 must be transparent")
	}
	if (Configuration{Index: 6, N: 3}).IsTransparent() {
		t.Error("C6 must not be transparent")
	}
	if got := (Configuration{Index: 5, N: 3}).String(); got != "C5(101)" {
		t.Errorf("String = %q", got)
	}
}

func TestApplyAllWiresChain(t *testing.T) {
	m, err := ApplyAll(cascade3())
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 || m.NumConfigurations() != 8 {
		t.Fatalf("N=%d configs=%d", m.N(), m.NumConfigurations())
	}
	wantTest := map[string]string{"OP1": "in", "OP2": "v1", "OP3": "v2"}
	for name, tin := range wantTest {
		comp, _ := m.Base.Component(name)
		op := comp.(*circuit.Opamp)
		if !op.Configurable || op.TestIn != tin {
			t.Errorf("%s: configurable=%v testIn=%q, want %q", name, op.Configurable, op.TestIn, tin)
		}
		if op.Mode != circuit.ModeNormal {
			t.Errorf("%s: template mode = %v, want normal", name, op.Mode)
		}
	}
}

func TestApplyDoesNotMutateOriginal(t *testing.T) {
	orig := cascade3()
	if _, err := ApplyAll(orig); err != nil {
		t.Fatal(err)
	}
	for _, op := range orig.Opamps() {
		if op.Configurable || op.TestIn != "" {
			t.Fatalf("original opamp %s was modified", op.Name())
		}
	}
}

func TestApplyErrors(t *testing.T) {
	c := cascade3()
	if _, err := Apply(c, nil); !errors.Is(err, ErrBadChain) {
		t.Errorf("empty chain: %v", err)
	}
	if _, err := Apply(c, []string{"OP1", "OP1"}); !errors.Is(err, ErrBadChain) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := Apply(c, []string{"OP9"}); !errors.Is(err, ErrBadChain) {
		t.Errorf("unknown: %v", err)
	}
	if _, err := Apply(c, []string{"R1"}); !errors.Is(err, ErrBadChain) {
		t.Errorf("non-opamp: %v", err)
	}
	noOp := circuit.New("x")
	noOp.R("R1", "in", "0", 1)
	noOp.Input, noOp.Output = "in", "in"
	if _, err := ApplyAll(noOp); !errors.Is(err, ErrBadChain) {
		t.Errorf("no opamps: %v", err)
	}
}

func TestConfigurationsEnumeration(t *testing.T) {
	m, _ := ApplyAll(cascade3())
	all := m.Configurations(true)
	if len(all) != 8 {
		t.Fatalf("with transparent: %d", len(all))
	}
	noT := m.Configurations(false)
	if len(noT) != 7 {
		t.Fatalf("without transparent: %d", len(noT))
	}
	for _, c := range noT {
		if c.IsTransparent() {
			t.Fatal("transparent configuration not excluded")
		}
	}
	if _, err := m.Config(8); !errors.Is(err, ErrBadConfig) {
		t.Errorf("out-of-range Config: %v", err)
	}
	c5, err := m.Config(5)
	if err != nil || c5.Index != 5 || c5.N != 3 {
		t.Errorf("Config(5) = %v, %v", c5, err)
	}
}

func TestConfigureSetsModes(t *testing.T) {
	m, _ := ApplyAll(cascade3())
	cfg, _ := m.Config(5) // OP1, OP3 follower
	ckt, err := m.Configure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	modes := map[string]circuit.OpampMode{}
	for _, op := range ckt.Opamps() {
		modes[op.Name()] = op.Mode
	}
	if modes["OP1"] != circuit.ModeFollower || modes["OP2"] != circuit.ModeNormal || modes["OP3"] != circuit.ModeFollower {
		t.Fatalf("modes = %v", modes)
	}
	// The template must stay all-normal.
	for _, op := range m.Base.Opamps() {
		if op.Mode != circuit.ModeNormal {
			t.Fatal("Configure mutated the template")
		}
	}
}

func TestConfigureRejectsForeignConfig(t *testing.T) {
	m, _ := ApplyAll(cascade3())
	if _, err := m.Configure(Configuration{Index: 1, N: 2}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}

func TestFunctionalConfigurationPreservesTransfer(t *testing.T) {
	orig := cascade3()
	m, _ := ApplyAll(orig)
	c0, _ := m.Config(0)
	ckt, err := m.Configure(c0)
	if err != nil {
		t.Fatal(err)
	}
	h0, err := mna.TransferAt(ckt, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	hOrig, err := mna.TransferAt(orig, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h0-hOrig) > 1e-9 {
		t.Fatalf("functional config H = %v, original H = %v", h0, hOrig)
	}
	if cmplx.Abs(hOrig-(-1)) > 1e-9 {
		t.Fatalf("cascade gain = %v, want −1", hOrig)
	}
}

func TestTransparentConfigurationIsIdentity(t *testing.T) {
	m, _ := ApplyAll(cascade3())
	c7, _ := m.Config(7)
	ckt, err := m.Configure(c7)
	if err != nil {
		t.Fatal(err)
	}
	h, err := mna.TransferAt(ckt, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h-1) > 1e-9 {
		t.Fatalf("transparent H = %v, want 1", h)
	}
}

func TestMixedConfigurationTransfer(t *testing.T) {
	// C1 (only OP1 follower): OP1 passes the input through, OP2 and OP3
	// invert ⇒ overall gain +1.
	m, _ := ApplyAll(cascade3())
	c1, _ := m.Config(1)
	ckt, _ := m.Configure(c1)
	h, err := mna.TransferAt(ckt, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h-1) > 1e-9 {
		t.Fatalf("C1 gain = %v, want +1", h)
	}
	// C2 (only OP2 follower): OP2 buffers v1 ⇒ OP1 and OP3 invert ⇒ +1.
	c2, _ := m.Config(2)
	ckt, _ = m.Configure(c2)
	h, err = mna.TransferAt(ckt, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h-1) > 1e-9 {
		t.Fatalf("C2 gain = %v, want +1", h)
	}
}

func TestFollowerOpampsMapping(t *testing.T) {
	// Table 3 of the paper.
	m, _ := ApplyAll(cascade3())
	want := map[int][]string{
		0: nil,
		1: {"OP1"},
		2: {"OP2"},
		3: {"OP1", "OP2"},
		4: {"OP3"},
		5: {"OP1", "OP3"},
		6: {"OP2", "OP3"},
		7: {"OP1", "OP2", "OP3"},
	}
	for idx, wantOps := range want {
		cfg, _ := m.Config(idx)
		got := m.FollowerOpamps(cfg)
		if len(got) != len(wantOps) {
			t.Errorf("C%d followers = %v, want %v", idx, got, wantOps)
			continue
		}
		for i := range got {
			if got[i] != wantOps[i] {
				t.Errorf("C%d followers = %v, want %v", idx, got, wantOps)
			}
		}
	}
}

func TestSubChainPartialDFT(t *testing.T) {
	m, _ := ApplyAll(cascade3())
	p, err := m.SubChain([]string{"OP1", "OP2"})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 2 || p.NumConfigurations() != 4 {
		t.Fatalf("partial N=%d", p.N())
	}
	// OP3 must be back to a classical opamp.
	comp, _ := p.Base.Component("OP3")
	op3 := comp.(*circuit.Opamp)
	if op3.Configurable || op3.TestIn != "" {
		t.Fatal("OP3 still configurable in partial DFT")
	}
	// Table 4 display: configuration 1 is "10-".
	cfg, _ := p.Config(1)
	if got := p.MaskVector(cfg); got != "10-" {
		t.Errorf("MaskVector(C1) = %q, want \"10-\"", got)
	}
	cfg3, _ := p.Config(3)
	if got := p.MaskVector(cfg3); got != "11-" {
		t.Errorf("MaskVector(C3) = %q, want \"11-\"", got)
	}
	// Partial configurations still solve.
	ckt, err := p.Configure(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mna.TransferAt(ckt, 1e3); err != nil {
		t.Fatal(err)
	}
}

func TestSubChainOrderIndependent(t *testing.T) {
	m, _ := ApplyAll(cascade3())
	p, err := m.SubChain([]string{"OP2", "OP1"}) // reversed request
	if err != nil {
		t.Fatal(err)
	}
	if p.Chain[0] != "OP1" || p.Chain[1] != "OP2" {
		t.Fatalf("sub-chain order = %v, want original order", p.Chain)
	}
}

func TestSubChainErrors(t *testing.T) {
	m, _ := ApplyAll(cascade3())
	if _, err := m.SubChain([]string{"OP9"}); !errors.Is(err, ErrBadChain) {
		t.Errorf("unknown: %v", err)
	}
	if _, err := m.SubChain([]string{"OP1", "OP1"}); !errors.Is(err, ErrBadChain) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := m.SubChain(nil); !errors.Is(err, ErrBadChain) {
		t.Errorf("empty: %v", err)
	}
}

func TestMaskVectorFullChain(t *testing.T) {
	m, _ := ApplyAll(cascade3())
	cfg, _ := m.Config(5)
	if got := m.MaskVector(cfg); got != "101" {
		t.Errorf("MaskVector = %q, want 101", got)
	}
}

func TestAccessBlock(t *testing.T) {
	m, _ := ApplyAll(cascade3())
	// Accessing the middle stage: OP1 and OP3 become followers.
	cfg, err := m.AccessBlock([]string{"OP2"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Index != 5 { // binary 101
		t.Fatalf("access config = %v, want C5", cfg)
	}
	// The emulated circuit isolates the middle inverting stage: overall
	// gain −1 (buffer · inverter · buffer).
	ckt, err := m.Configure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := mna.TransferAt(ckt, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h-(-1)) > 1e-9 {
		t.Fatalf("BUT-access gain = %v, want −1", h)
	}
	// Accessing everything = functional configuration.
	cfg, err = m.AccessBlock([]string{"OP1", "OP2", "OP3"})
	if err != nil || !cfg.IsFunctional() {
		t.Fatalf("full block = %v, %v", cfg, err)
	}
	// Accessing nothing = transparent configuration.
	cfg, err = m.AccessBlock(nil)
	if err != nil || !cfg.IsTransparent() {
		t.Fatalf("empty block = %v, %v", cfg, err)
	}
	if _, err := m.AccessBlock([]string{"OP9"}); !errors.Is(err, ErrBadChain) {
		t.Fatal("unknown block opamp accepted")
	}
}

// Property: FollowerCount equals the number of set bits, MaskVector length
// equals the opamp count, and Configure is idempotent in its effect.
func TestConfigurationProperties(t *testing.T) {
	f := func(idxRaw uint8) bool {
		m, err := ApplyAll(cascade3())
		if err != nil {
			return false
		}
		idx := int(idxRaw) % m.NumConfigurations()
		cfg, err := m.Config(idx)
		if err != nil {
			return false
		}
		// Popcount consistency.
		want := 0
		for i := 0; i < cfg.N; i++ {
			if cfg.Follower(i) {
				want++
			}
		}
		if cfg.FollowerCount() != want {
			return false
		}
		if len(m.MaskVector(cfg)) != len(m.AllOpamps) {
			return false
		}
		a, err := m.Configure(cfg)
		if err != nil {
			return false
		}
		b, err := m.Configure(cfg)
		if err != nil {
			return false
		}
		ha, err1 := mna.TransferAt(a, 777)
		hb, err2 := mna.TransferAt(b, 777)
		if err1 != nil || err2 != nil {
			return false
		}
		return cmplx.Abs(ha-hb) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
