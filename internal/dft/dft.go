// Package dft implements the multi-configuration DFT technique of
// Renovell, Azaïs and Bertrand: systematic (or partial) replacement of the
// opamps of an analog circuit by configurable opamps whose test inputs are
// chained from the primary input towards the primary output, and the
// enumeration and emulation of the 2^n resulting circuit configurations.
package dft

import (
	"errors"
	"fmt"
	"strings"

	"analogdft/internal/circuit"
)

// ErrBadChain is returned when the requested configurable-opamp chain is
// malformed (unknown opamp, duplicate, empty, not an opamp).
var ErrBadChain = errors.New("dft: bad configurable-opamp chain")

// ErrBadConfig is returned when a configuration does not belong to the
// modified circuit it is applied to.
var ErrBadConfig = errors.New("dft: bad configuration")

// Configuration identifies one test configuration of a circuit with N
// configurable opamps. Opamp i of the chain (0-based) is emulated in
// follower mode iff bit i of Index is set. Index 0 is the functional
// configuration C0; index 2^N−1 is the transparent configuration.
type Configuration struct {
	Index int
	N     int
}

// Follower reports whether chain opamp i (0-based) is in follower mode.
func (c Configuration) Follower(i int) bool {
	return i >= 0 && i < c.N && c.Index&(1<<uint(i)) != 0
}

// FollowerCount returns the number of opamps in follower mode.
func (c Configuration) FollowerCount() int {
	n := 0
	for i := 0; i < c.N; i++ {
		if c.Follower(i) {
			n++
		}
	}
	return n
}

// IsFunctional reports whether this is C0 (all opamps normal).
func (c Configuration) IsFunctional() bool { return c.Index == 0 }

// IsTransparent reports whether every opamp is in follower mode — the
// identity-function configuration of the paper, used for opamp-internal
// faults and excluded from passive-fault analysis.
func (c Configuration) IsTransparent() bool { return c.Index == 1<<uint(c.N)-1 }

// Label returns the paper's configuration name, e.g. "C5".
func (c Configuration) Label() string { return fmt.Sprintf("C%d", c.Index) }

// Vector returns the configuration vector as in Table 1 of the paper: the
// binary expansion of Index, MSB first, so that with n = 3 configuration
// C1 prints "001" and C5 prints "101".
func (c Configuration) Vector() string {
	b := make([]byte, c.N)
	for i := 0; i < c.N; i++ {
		if c.Follower(c.N - 1 - i) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// String implements fmt.Stringer.
func (c Configuration) String() string { return c.Label() + "(" + c.Vector() + ")" }

// Modified is a circuit processed by the multi-configuration technique:
// the template circuit with configurable opamps inserted, plus the chain
// bookkeeping needed to emulate configurations and to map configurations
// back onto opamps (§4.3 of the paper).
type Modified struct {
	// Base is the modified circuit template. All chain opamps are
	// Configurable with their TestIn wired; every opamp is in ModeNormal.
	Base *circuit.Circuit
	// Chain lists the configurable opamp names in test-chain order (the
	// order bits of a Configuration refer to).
	Chain []string
	// AllOpamps lists every opamp of the base circuit in netlist order
	// (used for partial-DFT display such as "10-").
	AllOpamps []string
}

// Apply clones the circuit and replaces the named opamps (in the given
// chain order) by configurable opamps: each gains a TestIn terminal wired
// to the previous chain member's output node, the first to the primary
// input. The original circuit is left untouched.
//
// Passing every opamp of the circuit yields the full multi-configuration
// DFT; passing a subset yields a partial DFT (§4.3).
func Apply(ckt *circuit.Circuit, chain []string) (*Modified, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("%w: empty chain", ErrBadChain)
	}
	if ckt.Input == "" {
		return nil, fmt.Errorf("%w: circuit has no input node", circuit.ErrInvalid)
	}
	base := ckt.Clone()

	seen := make(map[string]bool, len(chain))
	prevOut := circuit.CanonicalNode(base.Input)
	for _, name := range chain {
		if seen[name] {
			return nil, fmt.Errorf("%w: duplicate opamp %q", ErrBadChain, name)
		}
		seen[name] = true
		comp, ok := base.Component(name)
		if !ok {
			return nil, fmt.Errorf("%w: unknown component %q", ErrBadChain, name)
		}
		op, ok := comp.(*circuit.Opamp)
		if !ok {
			return nil, fmt.Errorf("%w: %q is a %v, not an opamp", ErrBadChain, name, comp.Kind())
		}
		op.Configurable = true
		op.TestIn = prevOut
		op.Mode = circuit.ModeNormal
		prevOut = circuit.CanonicalNode(op.Out)
	}

	var all []string
	for _, op := range base.Opamps() {
		all = append(all, op.Name())
	}
	return &Modified{Base: base, Chain: append([]string(nil), chain...), AllOpamps: all}, nil
}

// ApplyAll is Apply over every opamp of the circuit in netlist order — the
// brute-force, systematic replacement of §3.
func ApplyAll(ckt *circuit.Circuit) (*Modified, error) {
	var chain []string
	for _, op := range ckt.Opamps() {
		chain = append(chain, op.Name())
	}
	if len(chain) == 0 {
		return nil, fmt.Errorf("%w: circuit has no opamps", ErrBadChain)
	}
	return Apply(ckt, chain)
}

// N returns the number of configurable opamps.
func (m *Modified) N() int { return len(m.Chain) }

// NumConfigurations returns 2^N.
func (m *Modified) NumConfigurations() int { return 1 << uint(m.N()) }

// Configurations enumerates all 2^N configurations in index order,
// optionally dropping the transparent one (which cannot detect passive
// faults and is reserved for opamp-internal testing in the paper).
func (m *Modified) Configurations(includeTransparent bool) []Configuration {
	n := m.N()
	var out []Configuration
	for i := 0; i < 1<<uint(n); i++ {
		c := Configuration{Index: i, N: n}
		if !includeTransparent && c.IsTransparent() {
			continue
		}
		out = append(out, c)
	}
	return out
}

// Config returns the configuration with the given index.
func (m *Modified) Config(index int) (Configuration, error) {
	if index < 0 || index >= m.NumConfigurations() {
		return Configuration{}, fmt.Errorf("%w: index %d of %d", ErrBadConfig, index, m.NumConfigurations())
	}
	return Configuration{Index: index, N: m.N()}, nil
}

// Configure returns a deep copy of the base circuit emulated in the given
// configuration: chain opamp modes are set from the configuration bits.
func (m *Modified) Configure(cfg Configuration) (*circuit.Circuit, error) {
	if cfg.N != m.N() || cfg.Index < 0 || cfg.Index >= m.NumConfigurations() {
		return nil, fmt.Errorf("%w: %v for a %d-opamp chain", ErrBadConfig, cfg, m.N())
	}
	dftConfigures.Inc()
	ckt := m.Base.Clone()
	for i, name := range m.Chain {
		comp, ok := ckt.Component(name)
		if !ok {
			return nil, fmt.Errorf("%w: chain opamp %q vanished", ErrBadChain, name)
		}
		op := comp.(*circuit.Opamp)
		if cfg.Follower(i) {
			op.Mode = circuit.ModeFollower
		} else {
			op.Mode = circuit.ModeNormal
		}
	}
	ckt.Name = fmt.Sprintf("%s@%s", m.Base.Name, cfg.Label())
	return ckt, nil
}

// FollowerOpamps returns the names of the chain opamps in follower mode
// under cfg, in chain order — the opamp product of the §4.3 mapping
// (Table 3).
func (m *Modified) FollowerOpamps(cfg Configuration) []string {
	var out []string
	for i, name := range m.Chain {
		if cfg.Follower(i) {
			out = append(out, name)
		}
	}
	return out
}

// MaskVector renders cfg in the paper's partial-DFT notation (§4.3,
// Table 4): one character per opamp of the original circuit in netlist
// order — '1'/'0' for a configurable opamp in follower/normal mode, '-'
// for an opamp that was not made configurable. With chain {OP1, OP2} over
// opamps {OP1, OP2, OP3}, configuration index 1 renders "10-".
func (m *Modified) MaskVector(cfg Configuration) string {
	pos := make(map[string]int, len(m.Chain))
	for i, name := range m.Chain {
		pos[name] = i
	}
	var b strings.Builder
	for _, name := range m.AllOpamps {
		i, ok := pos[name]
		switch {
		case !ok:
			b.WriteByte('-')
		case cfg.Follower(i):
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// SubChain returns a new Modified restricted to the named opamps (a
// partial DFT), rebuilt from an unmodified clone of the original base so
// that non-selected opamps revert to classical, non-configurable opamps.
func (m *Modified) SubChain(names []string) (*Modified, error) {
	pristine := m.Base.Clone()
	for _, opName := range m.Chain {
		comp, ok := pristine.Component(opName)
		if !ok {
			return nil, fmt.Errorf("%w: chain opamp %q vanished", ErrBadChain, opName)
		}
		op := comp.(*circuit.Opamp)
		op.Configurable = false
		op.TestIn = ""
		op.Mode = circuit.ModeNormal
	}
	pristine.Name = m.Base.Name
	sub := make([]string, 0, len(names))
	chainSet := make(map[string]bool, len(m.Chain))
	for _, n := range m.Chain {
		chainSet[n] = true
	}
	// Preserve original chain order regardless of the order names come in.
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if !chainSet[n] {
			return nil, fmt.Errorf("%w: %q is not in the original chain", ErrBadChain, n)
		}
		want[n] = true
	}
	for _, n := range m.Chain {
		if want[n] {
			sub = append(sub, n)
		}
	}
	if len(sub) != len(names) {
		return nil, fmt.Errorf("%w: duplicate names in sub-chain", ErrBadChain)
	}
	return Apply(pristine, sub)
}

// AccessBlock returns the configuration that exposes an embedded block
// under test (§1 of the paper: the multi-configuration "ensures the full
// controllability/observability of any BUT by making all the other blocks
// transparent"): every chain opamp NOT in blockOpamps is switched to
// follower mode, so the signal path is buffered straight through the
// surrounding blocks while the named block operates normally.
func (m *Modified) AccessBlock(blockOpamps []string) (Configuration, error) {
	inBlock := make(map[string]bool, len(blockOpamps))
	for _, name := range blockOpamps {
		inBlock[name] = true
	}
	chainSet := make(map[string]bool, len(m.Chain))
	for _, name := range m.Chain {
		chainSet[name] = true
	}
	for _, name := range blockOpamps {
		if !chainSet[name] {
			return Configuration{}, fmt.Errorf("%w: block opamp %q not in chain", ErrBadChain, name)
		}
	}
	idx := 0
	for i, name := range m.Chain {
		if !inBlock[name] {
			idx |= 1 << uint(i)
		}
	}
	return Configuration{Index: idx, N: m.N()}, nil
}
