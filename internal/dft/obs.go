package dft

import "analogdft/internal/obs"

// Configuration emulation is a deep clone of the base circuit per call —
// a real cost at scale, so it is counted.
var dftConfigures = obs.Reg().Counter("dft_configure_total",
	"configuration emulations (deep clones of the base circuit)")
