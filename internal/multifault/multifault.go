// Package multifault extends the paper's single-fault study to
// simultaneous fault pairs. The §4 optimization guarantees maximum
// coverage of the *single*-fault universe; this package measures what the
// selected configuration set does to double faults: which pairs remain
// detectable, and which exhibit masking — both constituent faults are
// detectable alone, but their combination hides in every selected
// configuration (deviations of opposite sign cancelling).
package multifault

import (
	"errors"
	"fmt"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
)

// ErrBadPair is returned for malformed pairs.
var ErrBadPair = errors.New("multifault: bad pair")

// Pair is a simultaneous pair of single faults on distinct components.
type Pair struct {
	A, B fault.Fault
}

// ID returns a stable identifier, e.g. "fR1+fC2".
func (p Pair) ID() string { return p.A.ID + "+" + p.B.ID }

// Validate checks both faults and component distinctness.
func (p Pair) Validate() error {
	if err := p.A.Validate(); err != nil {
		return err
	}
	if err := p.B.Validate(); err != nil {
		return err
	}
	if p.A.Component == p.B.Component {
		return fmt.Errorf("%w: both faults on %q", ErrBadPair, p.A.Component)
	}
	return nil
}

// Apply injects both faults into a fresh clone.
func (p Pair) Apply(ckt *circuit.Circuit) (*circuit.Circuit, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	once, err := p.A.Apply(ckt)
	if err != nil {
		return nil, err
	}
	both, err := p.B.Apply(once)
	if err != nil {
		return nil, err
	}
	both.Name = fmt.Sprintf("%s[%s]", ckt.Name, p.ID())
	return both, nil
}

// PairUniverse builds every unordered pair of distinct-component faults.
func PairUniverse(faults fault.List) []Pair {
	var out []Pair
	for i := 0; i < len(faults); i++ {
		for j := i + 1; j < len(faults); j++ {
			if faults[i].Component == faults[j].Component {
				continue
			}
			out = append(out, Pair{A: faults[i], B: faults[j]})
		}
	}
	return out
}

// PairEval is the evaluation of one pair against a configuration set.
type PairEval struct {
	Pair Pair
	// Detectable: the pair deviates beyond ε somewhere in some selected
	// configuration.
	Detectable bool
	// Masked: the pair is undetectable although both constituent single
	// faults are detectable by the set — destructive interaction.
	Masked bool
	// Err records a failed simulation (pair counted undetectable).
	Err error
}

// Result is the double-fault study for one configuration set.
type Result struct {
	// Configs are the evaluated configurations.
	Configs []dft.Configuration
	// Singles maps fault ID → detectable (by the set).
	Singles map[string]bool
	// Pairs holds one evaluation per pair.
	Pairs []PairEval
	// Coverage is the detected fraction of all pairs.
	Coverage float64
	// MaskedCount counts masked pairs.
	MaskedCount int
}

// Options mirrors the detectability thresholds.
type Options struct {
	Eps       float64 // default 0.10
	Points    int     // default 121
	MeasFloor float64 // default 1e-4; negative disables
}

func (o Options) withDefaults() Options {
	if o.Eps == 0 {
		o.Eps = 0.10
	}
	if o.Points == 0 {
		o.Points = 121
	}
	if o.MeasFloor == 0 {
		o.MeasFloor = 1e-4
	}
	if o.MeasFloor < 0 {
		o.MeasFloor = 0
	}
	return o
}

// Evaluate measures single- and double-fault detectability of the fault
// list under the given configuration indices of a modified circuit.
func Evaluate(m *dft.Modified, cfgIndices []int, faults fault.List, region analysis.Region, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if len(cfgIndices) == 0 {
		return nil, fmt.Errorf("%w: no configurations", ErrBadPair)
	}
	if err := faults.Validate(); err != nil {
		return nil, err
	}
	if err := region.Validate(); err != nil {
		return nil, err
	}
	grid := region.Spec(opts.Points).Grid()

	type cfgCtx struct {
		cfg     dft.Configuration
		circuit *circuit.Circuit
		nominal *analysis.Response
	}
	var ctxs []cfgCtx
	for _, idx := range cfgIndices {
		cfg, err := m.Config(idx)
		if err != nil {
			return nil, err
		}
		ckt, err := m.Configure(cfg)
		if err != nil {
			return nil, err
		}
		nom, err := analysis.SweepOnGrid(ckt, grid)
		if err != nil {
			return nil, fmt.Errorf("multifault: nominal sweep of %s: %w", cfg, err)
		}
		ctxs = append(ctxs, cfgCtx{cfg: cfg, circuit: ckt, nominal: nom})
	}

	detectableIn := func(apply func(*circuit.Circuit) (*circuit.Circuit, error)) (bool, error) {
		for _, ctx := range ctxs {
			faulty, err := apply(ctx.circuit)
			if err != nil {
				return false, err
			}
			resp, err := analysis.SweepOnGrid(faulty, grid)
			if err != nil {
				return false, err
			}
			prof, err := analysis.RelativeDeviation(ctx.nominal, resp, opts.MeasFloor)
			if err != nil {
				return false, err
			}
			if len(prof.ExceedsAt(opts.Eps)) > 0 {
				return true, nil
			}
		}
		return false, nil
	}

	res := &Result{Singles: make(map[string]bool, len(faults))}
	for _, ctx := range ctxs {
		res.Configs = append(res.Configs, ctx.cfg)
	}
	for _, f := range faults {
		f := f
		det, err := detectableIn(f.Apply)
		if err != nil {
			return nil, fmt.Errorf("multifault: single %s: %w", f.ID, err)
		}
		res.Singles[f.ID] = det
	}

	pairs := PairUniverse(faults)
	detected := 0
	for _, p := range pairs {
		p := p
		eval := PairEval{Pair: p}
		det, err := detectableIn(p.Apply)
		if err != nil {
			eval.Err = err
		} else {
			eval.Detectable = det
		}
		if !eval.Detectable && res.Singles[p.A.ID] && res.Singles[p.B.ID] {
			eval.Masked = true
			res.MaskedCount++
		}
		if eval.Detectable {
			detected++
		}
		res.Pairs = append(res.Pairs, eval)
	}
	if len(pairs) > 0 {
		res.Coverage = float64(detected) / float64(len(pairs))
	}
	return res, nil
}

// MaskedPairs lists the masked pair IDs.
func (r *Result) MaskedPairs() []string {
	var out []string
	for _, p := range r.Pairs {
		if p.Masked {
			out = append(out, p.Pair.ID())
		}
	}
	return out
}
