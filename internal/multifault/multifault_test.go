package multifault

import (
	"errors"
	"testing"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
)

func biquad() (*circuit.Circuit, []string) {
	c := circuit.New("biquad")
	const r, cp = 15.915e3, 1e-9
	c.R("R1", "in", "a", r)
	c.R("R2", "v1", "a", 2*r)
	c.Cap("C1", "v1", "a", cp)
	c.R("R4", "v3", "a", r)
	c.OA("OP1", "0", "a", "v1")
	c.R("R5", "v1", "b", r)
	c.Cap("C2", "v2", "b", cp)
	c.OA("OP2", "0", "b", "v2")
	c.R("R6", "v2", "c", r)
	c.R("R3", "v3", "c", r)
	c.OA("OP3", "0", "c", "v3")
	c.Input, c.Output = "in", "v3"
	return c, []string{"OP1", "OP2", "OP3"}
}

var region = analysis.Region{LoHz: 100, HiHz: 5600}

func dev(comp string, factor float64) fault.Fault {
	return fault.Fault{ID: "f" + comp, Component: comp, Kind: fault.Deviation, Factor: factor}
}

func TestPairBasics(t *testing.T) {
	p := Pair{A: dev("R1", 1.2), B: dev("R2", 1.2)}
	if p.ID() != "fR1+fR2" {
		t.Fatalf("ID = %q", p.ID())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	same := Pair{A: dev("R1", 1.2), B: dev("R1", 0.8)}
	if err := same.Validate(); !errors.Is(err, ErrBadPair) {
		t.Fatal("same-component pair accepted")
	}
}

func TestPairApply(t *testing.T) {
	ckt, _ := biquad()
	p := Pair{A: dev("R1", 1.2), B: dev("C1", 1.2)}
	faulty, err := p.Apply(ckt)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := faulty.Valued("R1")
	c1, _ := faulty.Valued("C1")
	if r1.Value() != 15.915e3*1.2 || c1.Value() != 1e-9*1.2 {
		t.Fatal("pair not applied")
	}
	orig, _ := ckt.Valued("R1")
	if orig.Value() != 15.915e3 {
		t.Fatal("original mutated")
	}
}

func TestPairUniverseSize(t *testing.T) {
	faults := fault.List{dev("R1", 1.2), dev("R2", 1.2), dev("C1", 1.2)}
	pairs := PairUniverse(faults)
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d, want 3", len(pairs))
	}
	// Same-component entries are skipped.
	faults = append(faults, fault.Fault{ID: "fR1-", Component: "R1", Kind: fault.Deviation, Factor: 0.8})
	pairs = PairUniverse(faults)
	if len(pairs) != 5 { // C(4,2)=6 minus the (fR1, fR1-) pair
		t.Fatalf("pairs = %d, want 5", len(pairs))
	}
}

func TestEvaluateOptimizedSet(t *testing.T) {
	ckt, chain := biquad()
	m, err := dft.Apply(ckt, chain)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.DeviationUniverse(ckt, 0.2)
	// The paper-optimal configuration set {C1, C2}.
	res, err := Evaluate(m, []int{1, 2}, faults, region, Options{Points: 61, MeasFloor: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 28 { // C(8,2)
		t.Fatalf("pairs = %d", len(res.Pairs))
	}
	// Every single fault is detectable by {C1, C2} (maximum coverage set).
	for id, det := range res.Singles {
		if !det {
			t.Errorf("single %s undetectable under the optimized set", id)
		}
	}
	// Double faults overwhelmingly stay detectable.
	if res.Coverage < 0.9 {
		t.Errorf("pair coverage = %g", res.Coverage)
	}
	// Accounting consistency.
	masked := res.MaskedPairs()
	if len(masked) != res.MaskedCount {
		t.Fatalf("masked accounting: %d vs %d", len(masked), res.MaskedCount)
	}
	for _, p := range res.Pairs {
		if p.Masked && p.Detectable {
			t.Fatal("detectable pair flagged masked")
		}
	}
}

func TestEvaluateMaskingConstructed(t *testing.T) {
	// A resistive divider: in—R1—out, R2 out—gnd. +20% on both R1 and R2
	// leaves the ratio unchanged: a textbook masked pair.
	c := circuit.New("div")
	c.R("R1", "in", "out", 1e3)
	c.R("R2", "out", "0", 1e3)
	c.Input, c.Output = "in", "out"
	m, err := dft.Apply(mustOpampWrap(c), []string{"OPB"})
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.List{dev("R1", 1.2), dev("R2", 1.2)}
	// Divider sensitivity is ½, so a +20% single fault deviates ≈9.1%;
	// use ε = 5% to see the singles while the pair cancels exactly.
	res, err := Evaluate(m, []int{0}, faults, analysis.Region{LoHz: 10, HiHz: 1e4}, Options{Points: 31, Eps: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Singles["fR1"] || !res.Singles["fR2"] {
		t.Fatal("singles should be detectable")
	}
	if res.MaskedCount != 1 {
		t.Fatalf("masked = %d, want 1 (ratio-preserving pair)", res.MaskedCount)
	}
}

// mustOpampWrap buffers the divider with an opamp so a DFT chain exists.
func mustOpampWrap(c *circuit.Circuit) *circuit.Circuit {
	c.OA("OPB", "out", "buf", "buf")
	c.Output = "buf"
	return c
}

func TestEvaluateErrors(t *testing.T) {
	ckt, chain := biquad()
	m, _ := dft.Apply(ckt, chain)
	faults := fault.DeviationUniverse(ckt, 0.2)
	if _, err := Evaluate(m, nil, faults, region, Options{}); !errors.Is(err, ErrBadPair) {
		t.Error("no configs accepted")
	}
	if _, err := Evaluate(m, []int{0}, faults, analysis.Region{LoHz: 10, HiHz: 1}, Options{}); err == nil {
		t.Error("bad region accepted")
	}
	bad := fault.List{{ID: "", Component: "R1", Kind: fault.Deviation, Factor: 1.2}}
	if _, err := Evaluate(m, []int{0}, bad, region, Options{}); err == nil {
		t.Error("bad faults accepted")
	}
	if _, err := Evaluate(m, []int{99}, faults, region, Options{}); err == nil {
		t.Error("bad config index accepted")
	}
}
