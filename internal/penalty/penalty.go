// Package penalty models the costs of the multi-configuration DFT that
// motivate the paper's §4.3 optimization: configurable opamps carry analog
// switches [14] that add series resistance and shave opamp bandwidth
// (performance degradation), and they cost silicon area for the switches
// and selection-line routing. The package quantifies both so that the
// full-DFT vs partial-DFT trade-off can be measured instead of asserted.
//
// Degradation is measured physically: the DFT-modified circuit in its
// functional configuration is re-simulated with the switch parasitics in
// place and compared against the original circuit's response. With ideal
// opamps the feedback loop nulls the parasitics perfectly, so the
// analysis converts to (or requires) the single-pole opamp model, where
// finite loop gain lets the parasitics show at high frequency — exactly
// the mechanism in a real implementation.
package penalty

import (
	"errors"
	"fmt"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
)

// ErrBadModel is returned for invalid switch/area model parameters.
var ErrBadModel = errors.New("penalty: bad model")

// SwitchModel describes the parasitics a configurable opamp adds in the
// functional (normal) mode.
type SwitchModel struct {
	// OutputOhms is the series resistance of the output mux switch,
	// inserted between the opamp output and the node it drove (inside the
	// feedback loop, as in [14]).
	OutputOhms float64
	// PoleFactor scales the opamp's open-loop pole (and hence GBW) to
	// model the extra load of the switch network (e.g. 0.8 for a 20%
	// bandwidth loss). 0 or 1 means no bandwidth penalty.
	PoleFactor float64
}

// Validate checks the model.
func (m SwitchModel) Validate() error {
	if m.OutputOhms < 0 {
		return fmt.Errorf("%w: negative switch resistance %g", ErrBadModel, m.OutputOhms)
	}
	if m.PoleFactor < 0 || m.PoleFactor > 1 {
		return fmt.Errorf("%w: pole factor %g outside (0, 1]", ErrBadModel, m.PoleFactor)
	}
	return nil
}

// DefaultSwitchModel is a plausible CMOS transmission-gate budget:
// 200 Ω on-resistance and a 10% GBW loss.
var DefaultSwitchModel = SwitchModel{OutputOhms: 200, PoleFactor: 0.9}

// switchResistorName names the inserted parasitic for an opamp.
func switchResistorName(op string) string { return "_RSW_" + op }

// switchNodeName names the spliced raw-output node for an opamp.
func switchNodeName(op string) string { return op + "__sw" }

// ApplyDegradation returns a copy of the circuit in which each named
// opamp carries the switch parasitics: its output is rerouted through a
// series switch resistance, and (for single-pole opamps) its pole is
// scaled by PoleFactor. Opamps must exist; duplicates are rejected.
func ApplyDegradation(ckt *circuit.Circuit, opamps []string, m SwitchModel) (*circuit.Circuit, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out := ckt.Clone()
	seen := make(map[string]bool, len(opamps))
	for _, name := range opamps {
		if seen[name] {
			return nil, fmt.Errorf("%w: duplicate opamp %q", ErrBadModel, name)
		}
		seen[name] = true
		comp, ok := out.Component(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", circuit.ErrUnknownName, name)
		}
		op, ok := comp.(*circuit.Opamp)
		if !ok {
			return nil, fmt.Errorf("%w: %q is not an opamp", ErrBadModel, name)
		}
		if m.OutputOhms > 0 {
			raw := switchNodeName(name)
			orig := op.Out
			op.Out = raw
			if err := out.Add(&circuit.Resistor{
				Label: switchResistorName(name),
				A:     raw, B: orig,
				Ohms: m.OutputOhms,
			}); err != nil {
				return nil, err
			}
		}
		if m.PoleFactor > 0 && m.PoleFactor != 1 && op.Model == circuit.ModelSinglePole {
			op.PoleHz *= m.PoleFactor
		}
	}
	out.Name = ckt.Name + "+switches"
	return out, nil
}

// DegradationFloor is the measurement floor used by Degradation, relative
// to the response peak: deviations in regions more than 60 dB below the
// passband are not a meaningful performance spec and are excluded (the
// relative deviation of a ~zero against a ~zero otherwise dominates the
// metric).
const DegradationFloor = 1e-3

// Degradation measures the performance impact of a modification: the
// maximum relative deviation |ΔT/T| between the original and modified
// circuits' responses over the region (points grid samples), above the
// DegradationFloor. This is the same metric the detectability analysis
// uses for faults — here the "fault" is the DFT hardware itself.
func Degradation(original, modified *circuit.Circuit, region analysis.Region, points int) (float64, error) {
	if err := region.Validate(); err != nil {
		return 0, err
	}
	if points < 2 {
		points = 121
	}
	grid := region.Spec(points).Grid()
	ref, err := analysis.SweepOnGrid(original, grid)
	if err != nil {
		return 0, err
	}
	mod, err := analysis.SweepOnGrid(modified, grid)
	if err != nil {
		return 0, err
	}
	prof, err := analysis.RelativeDeviation(ref, mod, DegradationFloor)
	if err != nil {
		return 0, err
	}
	return prof.MaxRel(), nil
}

// AreaModel prices the DFT silicon overhead in normalized opamp-area
// units.
type AreaModel struct {
	// OpampArea is the area of one classical opamp (the unit).
	OpampArea float64
	// ConfigurableExtra is the extra area of one configurable opamp as a
	// fraction of OpampArea (switches, test-input routing).
	ConfigurableExtra float64
	// ControlPerLine is the area per selection line (driver + routing) as
	// a fraction of OpampArea.
	ControlPerLine float64
}

// Validate checks the model.
func (m AreaModel) Validate() error {
	if m.OpampArea <= 0 || m.ConfigurableExtra < 0 || m.ControlPerLine < 0 {
		return fmt.Errorf("%w: area model %+v", ErrBadModel, m)
	}
	return nil
}

// DefaultAreaModel reflects the duplicated-input-stage implementation
// [15]: ≈30% extra per configurable opamp, 5% per selection line.
var DefaultAreaModel = AreaModel{OpampArea: 1, ConfigurableExtra: 0.30, ControlPerLine: 0.05}

// Overhead returns the total DFT area overhead for nConfigurable
// configurable opamps, in units of OpampArea.
func (m AreaModel) Overhead(nConfigurable int) float64 {
	if nConfigurable <= 0 {
		return 0
	}
	return float64(nConfigurable) * m.OpampArea * (m.ConfigurableExtra + m.ControlPerLine)
}

// OverheadFraction returns Overhead normalized by the circuit's total
// opamp area (nTotal opamps).
func (m AreaModel) OverheadFraction(nConfigurable, nTotal int) float64 {
	if nTotal <= 0 {
		return 0
	}
	return m.Overhead(nConfigurable) / (float64(nTotal) * m.OpampArea)
}

// Comparison quantifies full vs partial DFT on one circuit.
type Comparison struct {
	// FullOpamps / PartialOpamps are the configurable-opamp counts.
	FullOpamps, PartialOpamps int
	// FullDegradation / PartialDegradation are the max |ΔT/T| deviations
	// of the functional response caused by the switch parasitics.
	FullDegradation, PartialDegradation float64
	// FullAreaOverhead / PartialAreaOverhead are the silicon overheads in
	// opamp-area units.
	FullAreaOverhead, PartialAreaOverhead float64
}

// Compare measures the §4.3 trade-off: degradation and area overhead of
// making all opamps configurable vs only the chosen subset. The circuit
// should use single-pole opamps (ideal opamps null the parasitics).
func Compare(ckt *circuit.Circuit, allOpamps, chosen []string, sw SwitchModel, area AreaModel, region analysis.Region, points int) (*Comparison, error) {
	if err := area.Validate(); err != nil {
		return nil, err
	}
	full, err := ApplyDegradation(ckt, allOpamps, sw)
	if err != nil {
		return nil, err
	}
	partial, err := ApplyDegradation(ckt, chosen, sw)
	if err != nil {
		return nil, err
	}
	fullDeg, err := Degradation(ckt, full, region, points)
	if err != nil {
		return nil, err
	}
	partialDeg, err := Degradation(ckt, partial, region, points)
	if err != nil {
		return nil, err
	}
	return &Comparison{
		FullOpamps:          len(allOpamps),
		PartialOpamps:       len(chosen),
		FullDegradation:     fullDeg,
		PartialDegradation:  partialDeg,
		FullAreaOverhead:    area.Overhead(len(allOpamps)),
		PartialAreaOverhead: area.Overhead(len(chosen)),
	}, nil
}
