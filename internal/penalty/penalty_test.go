package penalty

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
	"analogdft/internal/mna"
)

// invAmp builds an inverting amplifier (gain −10) with a selectable opamp
// model.
func invAmp(singlePole bool) *circuit.Circuit {
	c := circuit.New("inv")
	c.R("R1", "in", "m", 1e3)
	c.R("R2", "m", "out", 10e3)
	if singlePole {
		c.OASinglePole("OP1", "0", "m", "out", 1e5, 10)
	} else {
		c.OA("OP1", "0", "m", "out")
	}
	c.Input, c.Output = "in", "out"
	return c
}

func TestSwitchModelValidate(t *testing.T) {
	if err := (SwitchModel{OutputOhms: -1}).Validate(); !errors.Is(err, ErrBadModel) {
		t.Error("negative resistance accepted")
	}
	if err := (SwitchModel{PoleFactor: 1.5}).Validate(); !errors.Is(err, ErrBadModel) {
		t.Error("pole factor > 1 accepted")
	}
	if err := DefaultSwitchModel.Validate(); err != nil {
		t.Error(err)
	}
}

func TestApplyDegradationSplicesOutput(t *testing.T) {
	ckt := invAmp(true)
	mod, err := ApplyDegradation(ckt, []string{"OP1"}, SwitchModel{OutputOhms: 200, PoleFactor: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	comp, ok := mod.Component("_RSW_OP1")
	if !ok {
		t.Fatal("switch resistor not inserted")
	}
	r := comp.(*circuit.Resistor)
	if r.Ohms != 200 {
		t.Fatalf("Rsw = %g", r.Ohms)
	}
	op, _ := mod.Component("OP1")
	if op.(*circuit.Opamp).Out != "OP1__sw" {
		t.Fatal("output not rerouted")
	}
	if got := op.(*circuit.Opamp).PoleHz; math.Abs(got-9) > 1e-12 {
		t.Fatalf("pole = %g, want 9", got)
	}
	// Original untouched.
	if _, ok := ckt.Component("_RSW_OP1"); ok {
		t.Fatal("original mutated")
	}
	// The modified circuit still validates and solves.
	if err := mod.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := mna.TransferAt(mod, 1e3); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDegradationErrors(t *testing.T) {
	ckt := invAmp(true)
	if _, err := ApplyDegradation(ckt, []string{"OPX"}, DefaultSwitchModel); !errors.Is(err, circuit.ErrUnknownName) {
		t.Errorf("unknown opamp: %v", err)
	}
	if _, err := ApplyDegradation(ckt, []string{"R1"}, DefaultSwitchModel); !errors.Is(err, ErrBadModel) {
		t.Errorf("non-opamp: %v", err)
	}
	if _, err := ApplyDegradation(ckt, []string{"OP1", "OP1"}, DefaultSwitchModel); !errors.Is(err, ErrBadModel) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := ApplyDegradation(ckt, []string{"OP1"}, SwitchModel{OutputOhms: -5}); !errors.Is(err, ErrBadModel) {
		t.Errorf("bad model: %v", err)
	}
}

func TestIdealOpampNullsParasitics(t *testing.T) {
	// With an ideal opamp the loop gain is infinite: the spliced switch
	// resistance must not change the closed-loop response at all.
	ckt := invAmp(false)
	mod, err := ApplyDegradation(ckt, []string{"OP1"}, SwitchModel{OutputOhms: 1e3})
	if err != nil {
		t.Fatal(err)
	}
	h0, err := mna.TransferAt(ckt, 10e3)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := mna.TransferAt(mod, 10e3)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h0-h1) > 1e-9 {
		t.Fatalf("ideal-opamp response changed: %v vs %v", h0, h1)
	}
}

func TestDegradationGrowsWithSwitchResistance(t *testing.T) {
	ckt := invAmp(true)
	region := analysis.Region{LoHz: 10, HiHz: 1e6}
	prev := -1.0
	for _, ohms := range []float64{0, 100, 1e3, 10e3} {
		mod, err := ApplyDegradation(ckt, []string{"OP1"}, SwitchModel{OutputOhms: ohms})
		if err != nil {
			t.Fatal(err)
		}
		deg, err := Degradation(ckt, mod, region, 61)
		if err != nil {
			t.Fatal(err)
		}
		if deg < prev {
			t.Fatalf("degradation not monotone: %g after %g (Rsw=%g)", deg, prev, ohms)
		}
		prev = deg
	}
	if prev <= 0 {
		t.Fatal("10 kΩ switch caused no measurable degradation")
	}
}

func TestDegradationZeroForIdentity(t *testing.T) {
	ckt := invAmp(true)
	deg, err := Degradation(ckt, ckt.Clone(), analysis.Region{LoHz: 10, HiHz: 1e6}, 31)
	if err != nil {
		t.Fatal(err)
	}
	if deg != 0 {
		t.Fatalf("self degradation = %g", deg)
	}
}

func TestDegradationErrors(t *testing.T) {
	ckt := invAmp(true)
	if _, err := Degradation(ckt, ckt, analysis.Region{LoHz: 10, HiHz: 1}, 31); err == nil {
		t.Fatal("bad region accepted")
	}
}

func TestAreaModel(t *testing.T) {
	m := AreaModel{OpampArea: 1, ConfigurableExtra: 0.3, ControlPerLine: 0.05}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Overhead(2); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("Overhead(2) = %g, want 0.7", got)
	}
	if got := m.Overhead(0); got != 0 {
		t.Fatalf("Overhead(0) = %g", got)
	}
	if got := m.OverheadFraction(2, 3); math.Abs(got-0.7/3) > 1e-12 {
		t.Fatalf("OverheadFraction = %g", got)
	}
	if got := m.OverheadFraction(2, 0); got != 0 {
		t.Fatalf("OverheadFraction(n=0) = %g", got)
	}
	if err := (AreaModel{}).Validate(); !errors.Is(err, ErrBadModel) {
		t.Error("zero area model accepted")
	}
}

// threeStage builds a 3-opamp cascade with single-pole opamps.
func threeStage() *circuit.Circuit {
	c := circuit.New("c3")
	prev := "in"
	for i := 1; i <= 3; i++ {
		m := "m" + string(rune('0'+i))
		v := "v" + string(rune('0'+i))
		c.R("Ra"+string(rune('0'+i)), prev, m, 1e3)
		c.R("Rb"+string(rune('0'+i)), m, v, 1e3)
		c.OASinglePole("OP"+string(rune('0'+i)), "0", m, v, 1e5, 10)
		prev = v
	}
	c.Input, c.Output = "in", prev
	return c
}

func TestComparePartialBeatsFull(t *testing.T) {
	ckt := threeStage()
	region := analysis.Region{LoHz: 10, HiHz: 1e6}
	cmp, err := Compare(ckt, []string{"OP1", "OP2", "OP3"}, []string{"OP1", "OP2"},
		SwitchModel{OutputOhms: 2e3, PoleFactor: 0.8}, DefaultAreaModel, region, 61)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.FullOpamps != 3 || cmp.PartialOpamps != 2 {
		t.Fatalf("counts: %+v", cmp)
	}
	if cmp.PartialDegradation >= cmp.FullDegradation {
		t.Errorf("partial degradation %g not below full %g", cmp.PartialDegradation, cmp.FullDegradation)
	}
	if cmp.PartialAreaOverhead >= cmp.FullAreaOverhead {
		t.Errorf("partial area %g not below full %g", cmp.PartialAreaOverhead, cmp.FullAreaOverhead)
	}
	if cmp.FullDegradation <= 0 {
		t.Error("full DFT shows no degradation; switch model ineffective")
	}
}

func TestCompareErrors(t *testing.T) {
	ckt := threeStage()
	region := analysis.Region{LoHz: 10, HiHz: 1e6}
	if _, err := Compare(ckt, []string{"OPX"}, nil, DefaultSwitchModel, DefaultAreaModel, region, 31); err == nil {
		t.Fatal("bad opamp list accepted")
	}
	if _, err := Compare(ckt, []string{"OP1"}, nil, DefaultSwitchModel, AreaModel{}, region, 31); err == nil {
		t.Fatal("bad area model accepted")
	}
}
