// Package numeric provides the dense complex linear algebra used by the
// MNA (Modified Nodal Analysis) engine: matrices over complex128, LU
// factorization with partial pivoting, linear solves, determinants, norms
// and a cheap condition estimate.
//
// The matrices arising from small-signal analysis of RC-opamp networks are
// small (tens of unknowns) and dense once opamp constraint rows are added,
// so a straightforward dense implementation is both simple and fast enough:
// a full frequency sweep of a fault universe factors a few thousand
// matrices of this size per circuit.
package numeric

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// ErrSingular is returned when a factorization or solve encounters a
// numerically singular matrix (a pivot below the singularity threshold).
// In circuit terms this usually means a floating node or a contradictory
// constraint set (e.g. two ideal voltage constraints fighting over a node).
var ErrSingular = errors.New("numeric: singular matrix")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("numeric: incompatible shapes")

// PivotTolerance is the absolute magnitude below which a pivot is treated
// as zero during LU factorization. MNA stamps are O(1/R) to O(ωC) so values
// far below this are structurally-zero rows rather than tiny conductances.
const PivotTolerance = 1e-13

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("numeric: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// MatrixView wraps caller-owned storage as an n×n matrix without
// allocating: data must have exactly n·n elements. Slab-backed factor
// caches (one backing array for a whole frequency grid) use views so
// building the cache costs one allocation, not one per grid point.
func MatrixView(n int, data []complex128) *Matrix {
	if len(data) != n*n {
		panic(fmt.Sprintf("numeric: view over %d values for %dx%d", len(data), n, n))
	}
	return &Matrix{Rows: n, Cols: n, Data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]complex128) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(row), c)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) complex128 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v complex128) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

// Add accumulates v into element (i,j). This is the fundamental "stamp"
// operation used by the MNA engine.
func (m *Matrix) Add(i, j int, v complex128) {
	m.check(i, j)
	m.Data[i*m.Cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("numeric: index (%d,%d) out of range for %dx%d matrix", i, j, m.Rows, m.Cols))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets every element to 0, retaining the backing storage.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []complex128 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("numeric: row %d out of range for %dx%d matrix", i, m.Rows, m.Cols))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrShape, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mrow[k]
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			for j := 0; j < b.Cols; j++ {
				orow[j] += a * brow[j]
			}
		}
	}
	return out, nil
}

// MulVec returns m·x for a vector x of length m.Cols.
func (m *Matrix) MulVec(x []complex128) ([]complex128, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("%w: %dx%d · vec(%d)", ErrShape, m.Rows, m.Cols, len(x))
	}
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s complex128
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns the (non-conjugated) transpose.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MaxAbs returns the largest element magnitude.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// NormInf returns the infinity norm (max absolute row sum).
func (m *Matrix) NormInf() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for _, v := range m.Row(i) {
			s += cmplx.Abs(v)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d [\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		b.WriteString("  ")
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			fmt.Fprintf(&b, "(%9.3g%+9.3gi) ", real(v), imag(v))
		}
		b.WriteByte('\n')
	}
	b.WriteString("]")
	return b.String()
}

// Equalish reports whether two matrices agree element-wise within tol.
func (m *Matrix) Equalish(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if cmplx.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// LU is an LU factorization with partial pivoting: P·A = L·U packed into a
// single matrix (unit diagonal of L implicit).
type LU struct {
	lu    *Matrix
	pivot []int // row permutation
	sign  int   // permutation parity, for determinant
}

// Factor computes the LU factorization of a square matrix A. A is not
// modified. Returns ErrSingular when a pivot below PivotTolerance is met,
// wrapped with the offending column for diagnosis.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: cannot factor %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot: largest magnitude in column k at or below the diagonal.
		p, best := k, cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu.At(i, k)); a > best {
				p, best = i, a
			}
		}
		if best < PivotTolerance {
			return nil, fmt.Errorf("%w: pivot %.3g at column %d", ErrSingular, best, k)
		}
		pivot[k] = p
		if p != k {
			rp, rk := lu.Row(p), lu.Row(k)
			for j := 0; j < n; j++ {
				rp[j], rk[j] = rk[j], rp[j]
			}
			sign = -sign
		}
		d := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			l := lu.At(i, k) / d
			lu.Set(i, k, l)
			if l == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= l * rk[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// N returns the dimension of the factored system.
func (f *LU) N() int { return f.lu.Rows }

// Solve solves A·x = b for one right-hand side. b is not modified.
func (f *LU) Solve(b []complex128) ([]complex128, error) {
	n := f.N()
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), n)
	}
	x := make([]complex128, n)
	copy(x, b)
	// Apply permutation.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		var s complex128
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		var s complex128
		for j := i + 1; j < n; j++ {
			s += row[j] * x[j]
		}
		x[i] = (x[i] - s) / row[i]
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() complex128 {
	d := complex(float64(f.sign), 0)
	for i := 0; i < f.N(); i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve factors A and solves A·x = b in one call.
func Solve(a *Matrix, b []complex128) ([]complex128, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A⁻¹ (column-by-column solve); intended for tests and
// small diagnostics, not the hot path.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	n := f.N()
	inv := NewMatrix(n, n)
	e := make([]complex128, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// ConditionEstimate returns a cheap lower-bound estimate of the infinity-norm
// condition number κ∞(A) ≈ ‖A‖∞·‖A⁻¹‖∞, computed via the explicit inverse.
// Used by diagnostics to flag nearly-singular test configurations.
func ConditionEstimate(a *Matrix) (float64, error) {
	inv, err := Inverse(a)
	if err != nil {
		return math.Inf(1), err
	}
	return a.NormInf() * inv.NormInf(), nil
}

// Residual returns ‖A·x − b‖∞, a direct accuracy check for solves.
func Residual(a *Matrix, x, b []complex128) (float64, error) {
	ax, err := a.MulVec(x)
	if err != nil {
		return 0, err
	}
	if len(b) != len(ax) {
		return 0, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), len(ax))
	}
	max := 0.0
	for i := range ax {
		if r := cmplx.Abs(ax[i] - b[i]); r > max {
			max = r
		}
	}
	return max, nil
}
