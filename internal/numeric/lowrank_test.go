package numeric

import (
	"errors"
	"math/cmplx"
	"testing"
)

// testMatrix returns a well-conditioned 4×4 complex matrix and an RHS.
func testMatrix() (*Matrix, []complex128) {
	m, err := FromRows([][]complex128{
		{4 + 1i, 1, 0, 2},
		{1, 5, 1 - 1i, 0},
		{0, 1 + 2i, 6, 1},
		{2, 0, 1, 7 - 1i},
	})
	if err != nil {
		panic(err)
	}
	b := []complex128{1, 2 - 1i, 0, 3}
	return m, b
}

// newTestSolver factors a copy of m and primes the solver with A⁻¹b.
func newTestSolver(t *testing.T, m *Matrix, b []complex128) *LowRankSolver {
	t.Helper()
	lu, err := FactorInPlace(m.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	y := append([]complex128(nil), b...)
	if err := lu.SolveInPlace(y); err != nil {
		t.Fatal(err)
	}
	ls, err := NewLowRankSolver(lu, y)
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

// TestSolveRankOneMatchesDirect compares the Sherman–Morrison solution of
// (A + s·u·vᵀ)x = b against a direct factor-and-solve of the perturbed
// matrix, for several scales and sparse update patterns.
func TestSolveRankOneMatchesDirect(t *testing.T) {
	a, b := testMatrix()
	ls := newTestSolver(t, a, b)
	cases := []struct {
		name string
		s    complex128
		u, v []complex128
	}{
		{"conductance", 0.5, []complex128{1, -1, 0, 0}, []complex128{1, -1, 0, 0}},
		{"capacitive", 2i, []complex128{0, 1, -1, 0}, []complex128{0, 1, -1, 0}},
		{"asymmetric", -0.3 + 0.1i, []complex128{0, 0, 1, 0}, []complex128{1, 0, 0, -1}},
		{"single-entry", 1.5, []complex128{0, 0, 0, 1}, []complex128{0, 0, 0, 1}},
	}
	x := make([]complex128, 4)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := ls.SolveRankOne(c.s, c.u, c.v, x); err != nil {
				t.Fatal(err)
			}
			// Direct reference: perturb A densely and solve from scratch.
			p := a.Clone()
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					p.Add(i, j, c.s*c.u[i]*c.v[j])
				}
			}
			want, err := Solve(p, b)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if d := cmplx.Abs(x[i] - want[i]); d > 1e-12 {
					t.Errorf("x[%d] = %v, direct %v (|Δ| = %g)", i, x[i], want[i], d)
				}
			}
		})
	}
}

// TestSolveRankOneZeroScale checks the s = 0 short-circuit returns the
// nominal solution bit-for-bit.
func TestSolveRankOneZeroScale(t *testing.T) {
	a, b := testMatrix()
	ls := newTestSolver(t, a, b)
	x := make([]complex128, 4)
	u := []complex128{1, 0, 0, 0}
	if err := ls.SolveRankOne(0, u, u, x); err != nil {
		t.Fatal(err)
	}
	for i, y := range ls.Nominal() {
		if x[i] != y {
			t.Fatalf("x[%d] = %v, nominal %v", i, x[i], y)
		}
	}
}

// TestSolveRankOneSingularUpdate drives the denominator to zero: A = I,
// u = v = e₀, s = −1 makes A + s·u·vᵀ exactly singular, and the detector
// must refuse rather than divide by (nearly) zero.
func TestSolveRankOneSingularUpdate(t *testing.T) {
	lu, err := FactorInPlace(Identity(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	y := []complex128{1, 1, 1} // A = I ⇒ y = b
	ls, err := NewLowRankSolver(lu, y)
	if err != nil {
		t.Fatal(err)
	}
	e0 := []complex128{1, 0, 0}
	x := make([]complex128, 3)
	if err := ls.SolveRankOne(-1, e0, e0, x); !errors.Is(err, ErrSingularUpdate) {
		t.Fatalf("err = %v, want ErrSingularUpdate", err)
	}
}

// TestSolveRankOneShapeErrors covers operand-length validation in the
// constructor and the solve.
func TestSolveRankOneShapeErrors(t *testing.T) {
	a, b := testMatrix()
	lu, err := FactorInPlace(a.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLowRankSolver(lu, b[:2]); !errors.Is(err, ErrShape) {
		t.Fatalf("short nominal solution: err = %v, want ErrShape", err)
	}
	ls := newTestSolver(t, a, b)
	good := make([]complex128, 4)
	if err := ls.SolveRankOne(1, good[:3], good, good); !errors.Is(err, ErrShape) {
		t.Fatalf("short u: err = %v, want ErrShape", err)
	}
	if err := ls.SolveRankOne(1, good, good[:1], good); !errors.Is(err, ErrShape) {
		t.Fatalf("short v: err = %v, want ErrShape", err)
	}
	if err := ls.SolveRankOne(1, good, good, make([]complex128, 5)); !errors.Is(err, ErrShape) {
		t.Fatalf("long x: err = %v, want ErrShape", err)
	}
}
