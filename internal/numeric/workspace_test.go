package numeric

import "testing"

func TestWorkspaceEnsureReuses(t *testing.T) {
	w := NewWorkspace(4)
	if w.M.Rows != 4 || w.M.Cols != 4 || len(w.RHS) != 4 || len(w.Pivot) != 4 {
		t.Fatalf("NewWorkspace(4) sized %dx%d rhs=%d pivot=%d", w.M.Rows, w.M.Cols, len(w.RHS), len(w.Pivot))
	}
	m, rhs, piv := &w.M.Data[0], &w.RHS[0], &w.Pivot[0]

	// Shrinking must reuse the backing arrays.
	w.Ensure(2)
	if w.M.Rows != 2 || len(w.RHS) != 2 || len(w.Pivot) != 2 {
		t.Fatalf("Ensure(2) sized %dx%d rhs=%d pivot=%d", w.M.Rows, w.M.Cols, len(w.RHS), len(w.Pivot))
	}
	if &w.M.Data[0] != m || &w.RHS[0] != rhs || &w.Pivot[0] != piv {
		t.Fatal("Ensure(2) reallocated buffers that were large enough")
	}

	// Growing past capacity must reallocate to the right size.
	w.Ensure(8)
	if w.M.Rows != 8 || w.M.Cols != 8 || len(w.M.Data) != 64 || len(w.RHS) != 8 || len(w.Pivot) != 8 {
		t.Fatalf("Ensure(8) sized %dx%d data=%d rhs=%d pivot=%d",
			w.M.Rows, w.M.Cols, len(w.M.Data), len(w.RHS), len(w.Pivot))
	}
}

func TestWorkspaceFactorSolve(t *testing.T) {
	w := NewWorkspace(2)
	// [2 1; 1 3] x = [5; 10] → x = [1; 3]
	w.M.Set(0, 0, 2)
	w.M.Set(0, 1, 1)
	w.M.Set(1, 0, 1)
	w.M.Set(1, 1, 3)
	w.RHS[0], w.RHS[1] = 5, 10
	if err := w.FactorSolve(); err != nil {
		t.Fatal(err)
	}
	if d := w.RHS[0] - 1; real(d)*real(d)+imag(d)*imag(d) > 1e-24 {
		t.Fatalf("x0 = %v, want 1", w.RHS[0])
	}
	if d := w.RHS[1] - 3; real(d)*real(d)+imag(d)*imag(d) > 1e-24 {
		t.Fatalf("x1 = %v, want 3", w.RHS[1])
	}
}

func TestWorkspaceFactorSolveSingular(t *testing.T) {
	w := NewWorkspace(2)
	// Rank-1 matrix must surface ErrSingular through FactorSolve.
	w.M.Set(0, 0, 1)
	w.M.Set(0, 1, 1)
	w.M.Set(1, 0, 1)
	w.M.Set(1, 1, 1)
	w.RHS[0], w.RHS[1] = 1, 2
	if err := w.FactorSolve(); err == nil {
		t.Fatal("FactorSolve on singular matrix returned nil error")
	}
}
