package numeric

import (
	"math/rand"
	"testing"
)

func TestWorkspaceEnsureReuses(t *testing.T) {
	w := NewWorkspace(4)
	if w.M.Rows != 4 || w.M.Cols != 4 || len(w.RHS) != 4 || len(w.Pivot) != 4 {
		t.Fatalf("NewWorkspace(4) sized %dx%d rhs=%d pivot=%d", w.M.Rows, w.M.Cols, len(w.RHS), len(w.Pivot))
	}
	m, rhs, piv := &w.M.Data[0], &w.RHS[0], &w.Pivot[0]

	// Shrinking must reuse the backing arrays.
	w.Ensure(2)
	if w.M.Rows != 2 || len(w.RHS) != 2 || len(w.Pivot) != 2 {
		t.Fatalf("Ensure(2) sized %dx%d rhs=%d pivot=%d", w.M.Rows, w.M.Cols, len(w.RHS), len(w.Pivot))
	}
	if &w.M.Data[0] != m || &w.RHS[0] != rhs || &w.Pivot[0] != piv {
		t.Fatal("Ensure(2) reallocated buffers that were large enough")
	}

	// Growing past capacity must reallocate to the right size.
	w.Ensure(8)
	if w.M.Rows != 8 || w.M.Cols != 8 || len(w.M.Data) != 64 || len(w.RHS) != 8 || len(w.Pivot) != 8 {
		t.Fatalf("Ensure(8) sized %dx%d data=%d rhs=%d pivot=%d",
			w.M.Rows, w.M.Cols, len(w.M.Data), len(w.RHS), len(w.Pivot))
	}
}

func TestWorkspaceFactorSolve(t *testing.T) {
	w := NewWorkspace(2)
	// [2 1; 1 3] x = [5; 10] → x = [1; 3]
	w.M.Set(0, 0, 2)
	w.M.Set(0, 1, 1)
	w.M.Set(1, 0, 1)
	w.M.Set(1, 1, 3)
	w.RHS[0], w.RHS[1] = 5, 10
	if err := w.FactorSolve(); err != nil {
		t.Fatal(err)
	}
	if d := w.RHS[0] - 1; real(d)*real(d)+imag(d)*imag(d) > 1e-24 {
		t.Fatalf("x0 = %v, want 1", w.RHS[0])
	}
	if d := w.RHS[1] - 3; real(d)*real(d)+imag(d)*imag(d) > 1e-24 {
		t.Fatalf("x1 = %v, want 3", w.RHS[1])
	}
}

func TestWorkspaceFactorSolveSingular(t *testing.T) {
	w := NewWorkspace(2)
	// Rank-1 matrix must surface ErrSingular through FactorSolve.
	w.M.Set(0, 0, 1)
	w.M.Set(0, 1, 1)
	w.M.Set(1, 0, 1)
	w.M.Set(1, 1, 1)
	w.RHS[0], w.RHS[1] = 1, 2
	if err := w.FactorSolve(); err == nil {
		t.Fatal("FactorSolve on singular matrix returned nil error")
	}
}

// densePattern builds an n×n all-nonzero Pattern — the cheapest way to
// get a pattern of a known size for the resize-contract tests.
func densePattern(t *testing.T, n int) *Pattern {
	t.Helper()
	coords := make([]int64, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			coords = append(coords, PackCoord(i, j))
		}
	}
	p, err := PatternFromCoords(n, coords)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWorkspaceEnsureSparseSlabContract(t *testing.T) {
	w := &Workspace{}
	p6 := densePattern(t, 6)
	w.EnsureSparse(p6)
	if len(w.RHS) != 6 || len(w.SVals) != p6.NNZ() {
		t.Fatalf("EnsureSparse sized rhs=%d svals=%d, want 6 and %d", len(w.RHS), len(w.SVals), p6.NNZ())
	}
	// RHS and SVals are adjacent carvings of one slab, each capped at its
	// own length so an append on one can never bleed into the other.
	if &w.RHS[0] != &w.sslab[0] || &w.SVals[0] != &w.sslab[6] {
		t.Fatal("RHS/SVals are not carved from the shared slab")
	}
	if cap(w.RHS) != len(w.RHS) || cap(w.SVals) != len(w.SVals) {
		t.Fatalf("segments not capacity-capped: cap(rhs)=%d cap(svals)=%d", cap(w.RHS), cap(w.SVals))
	}
	base := &w.sslab[0]

	// Rebinding the same pattern is a no-op on the storage.
	rhs0, sv0 := &w.RHS[0], &w.SVals[0]
	w.EnsureSparse(p6)
	if &w.RHS[0] != rhs0 || &w.SVals[0] != sv0 {
		t.Fatal("rebinding the same pattern reallocated the slab")
	}

	// Shrinking to a smaller pattern reuses the backing slab; the segments
	// re-carve from its front.
	p3 := densePattern(t, 3)
	w.EnsureSparse(p3)
	if len(w.RHS) != 3 || len(w.SVals) != p3.NNZ() {
		t.Fatalf("shrink sized rhs=%d svals=%d", len(w.RHS), len(w.SVals))
	}
	if &w.RHS[0] != base {
		t.Fatal("shrink reallocated a slab that was large enough")
	}
	if &w.SVals[0] != &w.sslab[3] {
		t.Fatal("shrink did not re-carve SVals at the new RHS boundary")
	}

	// Growing past capacity reallocates to fit the larger pattern.
	p9 := densePattern(t, 9)
	w.EnsureSparse(p9)
	if len(w.RHS) != 9 || len(w.SVals) != p9.NNZ() {
		t.Fatalf("grow sized rhs=%d svals=%d", len(w.RHS), len(w.SVals))
	}
	if cap(w.sslab) < 9+p9.NNZ() {
		t.Fatalf("grow left slab cap %d < %d", cap(w.sslab), 9+p9.NNZ())
	}
}

func TestWorkspaceEnsureSparseNoAliasing(t *testing.T) {
	w := &Workspace{}
	p := densePattern(t, 4)
	w.EnsureSparse(p)
	for i := range w.RHS {
		w.RHS[i] = 7
	}
	for i := range w.SVals {
		w.SVals[i] = 9
	}
	for i, v := range w.RHS {
		if v != 7 {
			t.Fatalf("RHS[%d] = %v after SVals writes, want 7", i, v)
		}
	}
	for i, v := range w.SVals {
		if v != 9 {
			t.Fatalf("SVals[%d] = %v, want 9", i, v)
		}
	}
}

// TestWorkspaceSharedAcrossLayouts exercises one workspace alternating
// between the dense and sparse paths, as LayoutAuto engines can when the
// circuit size crosses the heuristic between runs: RHS is the shared
// buffer, and each Ensure* must leave the other layout's buffers intact.
func TestWorkspaceSharedAcrossLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randSparse(rng, 5, 0.5)
	p, vals := patternOf(t, m)
	rhs := make([]complex128, 5)
	for i := range rhs {
		rhs[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}

	// Reference dense solve in a fresh workspace.
	ref := NewWorkspace(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			ref.M.Set(i, j, m.At(i, j))
		}
	}
	copy(ref.RHS, rhs)
	if err := ref.FactorSolve(); err != nil {
		t.Fatal(err)
	}

	// One workspace: sparse solve, then dense solve, then sparse again.
	w := &Workspace{}
	solveSparse := func() {
		t.Helper()
		w.EnsureSparse(p)
		copy(w.SVals, vals)
		copy(w.RHS, rhs)
		if err := w.SparseFactorSolve(); err != nil {
			t.Fatal(err)
		}
		for i := range ref.RHS {
			if !sameBits(w.RHS[i], ref.RHS[i]) {
				t.Fatalf("sparse x[%d] = %v, dense ref %v", i, w.RHS[i], ref.RHS[i])
			}
		}
	}
	solveSparse()
	w.Ensure(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			w.M.Set(i, j, m.At(i, j))
		}
	}
	copy(w.RHS, rhs)
	if err := w.FactorSolve(); err != nil {
		t.Fatal(err)
	}
	for i := range ref.RHS {
		if !sameBits(w.RHS[i], ref.RHS[i]) {
			t.Fatalf("dense x[%d] = %v after layout switch, want %v", i, w.RHS[i], ref.RHS[i])
		}
	}
	solveSparse()
}

// TestWorkspaceSparseFactorSolveAllocFree pins the warmup contract of
// the sparse path: once EnsureSparse has bound the pattern, the whole
// refill + factor + solve cycle allocates nothing.
func TestWorkspaceSparseFactorSolveAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randSparse(rng, 12, 0.3)
	p, vals := patternOf(t, m)
	rhs := make([]complex128, 12)
	for i := range rhs {
		rhs[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	w := &Workspace{}
	w.EnsureSparse(p)
	cycle := func() {
		w.EnsureSparse(p)
		copy(w.SVals, vals)
		copy(w.RHS, rhs)
		if err := w.SparseFactorSolve(); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warmup: first Factor sizes the symbolic fallback buffers
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Fatalf("sparse factor+solve allocates %.1f/op after warmup, want 0", avg)
	}
}
