package numeric

import (
	"errors"
	"fmt"
	"math/cmplx"
)

// ErrSingularUpdate is returned by SolveRankOne when the Sherman–Morrison
// denominator 1 + s·vᵀA⁻¹u is too small: the perturbed matrix A + s·u·vᵀ
// is (numerically) singular even though the nominal A factored fine.
// Callers fall back to a full refactorization of the perturbed matrix,
// which reproduces the reference path's singularity verdict exactly.
var ErrSingularUpdate = errors.New("numeric: singular rank-1 update")

// UpdateTolerance is the magnitude below which the Sherman–Morrison
// denominator is treated as zero. It is deliberately far above machine
// epsilon: a denominator of 10⁻⁸ already amplifies the nominal solve's
// rounding error by 10⁸, so such points are handed back to the full
// refactorization path rather than answered with digits that are mostly
// noise.
const UpdateTolerance = 1e-8

// LowRankSolver couples one LU factorization of a nominal matrix A with
// its solution y = A⁻¹·b and a scratch vector, so that rank-1 perturbed
// systems (A + s·u·vᵀ)·x = b solve in O(n²) — two triangular solves and
// three dot products — instead of the O(n³) refactorization the naive
// path pays per perturbation. This is the Sherman–Morrison identity:
//
//	x = y − z·(s·vᵀy)/(1 + s·vᵀz),  z = A⁻¹·u
//
// The solver retains lu and y by reference; neither may be mutated while
// the solver is in use. A LowRankSolver is not safe for concurrent use
// (the scratch vector is shared across calls); give each worker its own.
type LowRankSolver struct {
	lu  LU
	slu *SparseLU    // sparse-layout factorization; nil on the dense path
	y   []complex128 // nominal solution A⁻¹·b
	z   []complex128 // scratch for A⁻¹·u
}

// NewLowRankSolver wraps a factorization of the nominal matrix and its
// pre-solved right-hand side. y must have length lu.N().
func NewLowRankSolver(lu LU, y []complex128) (*LowRankSolver, error) {
	if len(y) != lu.N() {
		return nil, fmt.Errorf("%w: nominal solution length %d, want %d", ErrShape, len(y), lu.N())
	}
	return &LowRankSolver{lu: lu, y: y, z: make([]complex128, lu.N())}, nil
}

// NewLowRankSolverSparse is NewLowRankSolver for a sparse-layout
// factorization. The solver is a concrete dual-backend type rather than
// an interface wrapper so the dense path keeps its direct (unboxed)
// calls; sparse triangular solves are bit-identical to dense ones, so
// both backends yield the same x.
func NewLowRankSolverSparse(slu *SparseLU, y []complex128) (*LowRankSolver, error) {
	if len(y) != slu.N() {
		return nil, fmt.Errorf("%w: nominal solution length %d, want %d", ErrShape, len(y), slu.N())
	}
	return &LowRankSolver{slu: slu, y: y, z: make([]complex128, slu.N())}, nil
}

// Nominal returns the cached nominal solution y = A⁻¹·b (a live reference,
// not a copy).
func (ls *LowRankSolver) Nominal() []complex128 { return ls.y }

// N returns the dimension of the nominal system.
func (ls *LowRankSolver) N() int {
	if ls.slu != nil {
		return ls.slu.N()
	}
	return ls.lu.N()
}

// solveZ runs the backend's triangular solves over ls.z.
func (ls *LowRankSolver) solveZ() error {
	if ls.slu != nil {
		return ls.slu.SolveInPlace(ls.z)
	}
	return ls.lu.SolveInPlace(ls.z)
}

// SolveRankOne writes x = (A + s·u·vᵀ)⁻¹·b into x via Sherman–Morrison.
// u, v and x must have length N(); u and v are read only, and x may alias
// neither. A scale of exactly zero short-circuits to the nominal
// solution. Returns ErrSingularUpdate when |1 + s·vᵀA⁻¹u| <
// UpdateTolerance — the singular-update detector; the caller must then
// refactor the perturbed matrix in full (or propagate the point as
// singular).
func (ls *LowRankSolver) SolveRankOne(s complex128, u, v, x []complex128) error {
	n := ls.N()
	if len(u) != n || len(v) != n || len(x) != n {
		return fmt.Errorf("%w: rank-1 operands (%d, %d, %d), want %d", ErrShape, len(u), len(v), len(x), n)
	}
	if s == 0 {
		copy(x, ls.y)
		return nil
	}
	copy(ls.z, u)
	if err := ls.solveZ(); err != nil {
		return err
	}
	var vy, vz complex128
	for i, vi := range v {
		if vi != 0 {
			vy += vi * ls.y[i]
			vz += vi * ls.z[i]
		}
	}
	den := 1 + s*vz
	if cmplx.Abs(den) < UpdateTolerance {
		return fmt.Errorf("%w: |1 + s·vᵀA⁻¹u| = %.3g", ErrSingularUpdate, cmplx.Abs(den))
	}
	c := s * vy / den
	for i := range x {
		x[i] = ls.y[i] - c*ls.z[i]
	}
	return nil
}

// SolveRankOneSparse is SolveRankOne with u and v supplied in sparse
// (index, value) form — the incidence vectors MNA rank-1 patches carry
// hold at most two entries each, so scattering them dense first is pure
// waste. The result is bit-identical to densifying and calling
// SolveRankOne: the scatter places the same values, and with at most two
// terms per dot product the accumulation order cannot change the sum
// (complex addition of two terms is commutative bit-for-bit).
func (ls *LowRankSolver) SolveRankOneSparse(s complex128, uIdx []int, uVal []complex128, vIdx []int, vVal []complex128, x []complex128) error {
	n := ls.N()
	if len(x) != n {
		return fmt.Errorf("%w: rank-1 solution length %d, want %d", ErrShape, len(x), n)
	}
	for _, i := range uIdx {
		if i < 0 || i >= n {
			return fmt.Errorf("%w: u index %d outside order %d", ErrShape, i, n)
		}
	}
	for _, i := range vIdx {
		if i < 0 || i >= n {
			return fmt.Errorf("%w: v index %d outside order %d", ErrShape, i, n)
		}
	}
	if s == 0 {
		copy(x, ls.y)
		return nil
	}
	ScatterSparse(uIdx, uVal, ls.z)
	if err := ls.solveZ(); err != nil {
		return err
	}
	vy := DotSparse(vIdx, vVal, ls.y)
	vz := DotSparse(vIdx, vVal, ls.z)
	den := 1 + s*vz
	if cmplx.Abs(den) < UpdateTolerance {
		return fmt.Errorf("%w: |1 + s·vᵀA⁻¹u| = %.3g", ErrSingularUpdate, cmplx.Abs(den))
	}
	c := s * vy / den
	for i := range x {
		x[i] = ls.y[i] - c*ls.z[i]
	}
	return nil
}
