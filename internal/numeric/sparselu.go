package numeric

import (
	"fmt"
	"math/cmplx"
)

// SparseLU is the LU factorization of a sparse complex matrix with
// partial pivoting, produced by SparseScratch.Factor. L is stored by
// columns (unit diagonal implicit, row indices remapped to final pivot
// positions) and U by rows (strict upper triangle, columns ascending,
// diagonal separate) — exactly the orientations the bit-compatible
// substitutions need.
//
// Compatibility contract: for the same input values, a SparseLU and the
// dense FactorInPlace produce bit-identical solutions, determinants and
// singularity verdicts. This holds by construction, not by tolerance:
// the elimination performs the same floating-point operations in the
// same order — the pivot search scans candidate rows ascending with the
// same strictly-greater comparison and the same tolerance, each entry
// receives its updates in ascending elimination order (one subtraction
// per step, same as the dense right-looking loop), and the
// substitutions accumulate each row's sum in ascending column order
// before a single subtract, as the dense solver does. The operations
// the sparse path skips involve entries that are exact +0 in the dense
// working matrix, and adding a signed-zero product to a finite
// accumulator never changes its bits. The engine-equivalence suite
// leans on this: dense and sparse layouts agree bit-for-bit, not merely
// within a tolerance.
//
// A factor returned by Factor aliases its scratch and is valid only
// until the scratch factors again; Detach copies one that must outlive
// the scratch (the low-rank grid cache retains one per frequency
// point). SolveInPlace uses a scratch buffer inside the factor, so a
// single factor must not be solved from multiple goroutines at once —
// the same one-workspace-per-worker discipline the dense path already
// follows.
type SparseLU struct {
	n     int
	pivot []int // row-swap sequence, same semantics as the dense LU
	sign  int

	// L by columns: column j's entries are lIdx/lVal[lColPtr[j]:lColPtr[j+1]],
	// rows in final (post-pivot) positions.
	lColPtr []int32
	lIdx    []int32
	lVal    []complex128

	// U by rows: row i's strict-upper entries are uIdx/uVal[uRowPtr[i]:uRowPtr[i+1]],
	// column indices ascending; diag[i] is U's diagonal.
	uRowPtr []int32
	uIdx    []int32
	uVal    []complex128
	diag    []complex128

	acc []complex128 // forward-substitution accumulator, length n
}

// N returns the dimension of the factored system.
func (f *SparseLU) N() int { return f.n }

// Pivot exposes the row-swap sequence (same semantics as LU.Pivot).
func (f *SparseLU) Pivot() []int { return f.pivot }

// Det returns the determinant: the pivot sign times the product of U's
// diagonal, multiplied in elimination order exactly as LU.Det does.
func (f *SparseLU) Det() complex128 {
	d := complex(float64(f.sign), 0)
	for i := 0; i < f.n; i++ {
		d *= f.diag[i]
	}
	return d
}

// SolveInPlace solves A·x = b writing the solution over b, with no
// allocations and bit-identical results to the dense LU.SolveInPlace.
func (f *SparseLU) SolveInPlace(b []complex128) error {
	n := f.n
	if len(b) != n {
		return fmt.Errorf("%w: rhs length %d for order %d", ErrShape, len(b), n)
	}
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
	}
	// Forward substitution with L column-oriented and a deferred-subtract
	// accumulator: acc[i] collects Σ_{j<i} L[i][j]·b[j]. Walking columns
	// ascending adds each row's products in ascending j — the dense row
	// loop's accumulation order — and each row subtracts its sum exactly
	// once, when it finalizes.
	acc := f.acc
	clear(acc)
	for j := 0; j < n; j++ {
		bj := b[j] - acc[j]
		b[j] = bj
		for t := f.lColPtr[j]; t < f.lColPtr[j+1]; t++ {
			acc[f.lIdx[t]] += f.lVal[t] * bj
		}
	}
	// Back substitution, U row-oriented: ascending-column accumulation,
	// one subtract, then the divide — the dense loop verbatim.
	for i := n - 1; i >= 0; i-- {
		var s complex128
		for t := f.uRowPtr[i]; t < f.uRowPtr[i+1]; t++ {
			s += f.uVal[t] * b[f.uIdx[t]]
		}
		b[i] = (b[i] - s) / f.diag[i]
	}
	return nil
}

// Detach copies the factorization into storage appended to the given
// arenas so it outlives its scratch. Arena growth is amortized append;
// segments already handed out keep pointing at their original backing,
// so earlier detached factors stay valid as the arenas grow.
func (f *SparseLU) Detach(intArena *[]int32, cplxArena *[]complex128, pivArena *[]int) *SparseLU {
	d := &SparseLU{n: f.n, sign: f.sign}
	ints := *intArena
	take := func(src []int32) []int32 {
		start := len(ints)
		ints = append(ints, src...)
		return ints[start:len(ints):len(ints)]
	}
	d.lColPtr = take(f.lColPtr)
	d.lIdx = take(f.lIdx)
	d.uRowPtr = take(f.uRowPtr)
	d.uIdx = take(f.uIdx)
	*intArena = ints

	cs := *cplxArena
	takeC := func(src []complex128) []complex128 {
		start := len(cs)
		cs = append(cs, src...)
		return cs[start:len(cs):len(cs)]
	}
	d.lVal = takeC(f.lVal)
	d.uVal = takeC(f.uVal)
	d.diag = takeC(f.diag)
	// The accumulator segment is reserved, not zeroed: SolveInPlace
	// clears it before every use, so stale arena contents are harmless
	// and the reservation needs no temporary.
	start := len(cs)
	if cap(cs)-start >= f.n {
		cs = cs[:start+f.n]
	} else {
		for i := 0; i < f.n; i++ {
			cs = append(cs, 0)
		}
	}
	d.acc = cs[start:len(cs):len(cs)]
	*cplxArena = cs

	ps := *pivArena
	start = len(ps)
	ps = append(ps, f.pivot...)
	d.pivot = ps[start:len(ps):len(ps)]
	*pivArena = ps
	return d
}

// SparseScratch is the reusable working state of the left-looking
// sparse factorization: the dense column scatter, pivot-order tracking,
// the interleaved column-phase L/U store and the row-phase U transpose.
// One scratch serves one worker; once its buffers reach their high-water
// sizes, factor and solve allocate nothing.
type SparseScratch struct {
	pat *Pattern

	x     []complex128 // dense column scatter, indexed by original row (n)
	diag  []complex128 // U diagonal in elimination order (n)
	acc   []complex128 // solve accumulator handed to the factor (n)
	rowAt []int32      // position → original row, tracking dense row swaps
	posOf []int32      // original row → position
	cnt   []int32      // counting-sort scratch (n)

	lColPtr []int32 // n+1: during factor, start of column j's L run
	uColPtr []int32 // n+1: during factor, start of column j's U run
	uRowPtr []int32 // n+1

	// Column-phase store: column j appends its U entries (pivot position,
	// value) at [uColPtr[j], lColPtr[j]) then its L entries (original
	// row, value) at [lColPtr[j], uColPtr[j+1]). finalize transposes U
	// out to uIdx/uVal row storage and compacts L in place, after which
	// [lColPtr[j], lColPtr[j+1]) is column j's L run with final rows.
	cIdx []int32
	cVal []complex128

	uIdx []int32
	uVal []complex128

	// Every buffer above is carved out of these two slabs, so binding a
	// pattern costs two allocations (plus the []int pivot) no matter how
	// many logical arrays the factorization tracks.
	cplxSlab []complex128
	intSlab  []int32

	out SparseLU
}

// NewSparseScratch returns scratch bound to the pattern.
func NewSparseScratch(p *Pattern) *SparseScratch {
	s := &SparseScratch{}
	s.Bind(p)
	return s
}

// Bind sizes the scratch for a pattern, reallocating only when the
// current buffers are too small — the same grow-only reuse contract as
// Workspace.Ensure. Rebinding the current pattern is a no-op.
func (s *SparseScratch) Bind(p *Pattern) {
	if s.pat == p {
		return
	}
	n := p.N
	// Entry stores start from a fill estimate (L+U of the near-banded
	// systems MNA produces runs ~1.5–2× the input nonzeros); growth past
	// it is amortized append, migrating the grown buffer off the slab up
	// to a high-water mark that the next Factor reuses.
	est := 2*p.NNZ() + 2*n
	if need := 3*n + 2*est; cap(s.cplxSlab) < need {
		s.cplxSlab = make([]complex128, need)
	}
	c := s.cplxSlab
	s.x = c[0:n:n]
	s.diag = c[n : 2*n : 2*n]
	s.acc = c[2*n : 3*n : 3*n]
	s.cVal = c[3*n : 3*n : 3*n+est]
	s.uVal = c[3*n+est : 3*n+est : 3*n+2*est]
	clear(s.x)
	if need := 6*n + 3 + 2*est; cap(s.intSlab) < need {
		s.intSlab = make([]int32, need)
	}
	in := s.intSlab
	s.rowAt = in[0:n:n]
	s.posOf = in[n : 2*n : 2*n]
	s.cnt = in[2*n : 3*n : 3*n]
	s.lColPtr = in[3*n : 4*n+1 : 4*n+1]
	s.uColPtr = in[4*n+1 : 5*n+2 : 5*n+2]
	s.uRowPtr = in[5*n+2 : 6*n+3 : 6*n+3]
	s.cIdx = in[6*n+3 : 6*n+3 : 6*n+3+est]
	s.uIdx = in[6*n+3+est : 6*n+3+est : 6*n+3+2*est]
	if cap(s.out.pivot) < n {
		s.out.pivot = make([]int, n)
	}
	s.pat = p
}

// Factor computes the LU factorization, with partial pivoting, of the
// matrix whose values are vals laid out under the bound pattern. The
// returned factor aliases the scratch and is valid until the next
// Factor call (Detach it to keep it longer). Failures are exactly the
// dense FactorInPlace's: ErrSingular with the same pivot magnitude and
// column index.
//
// The elimination is left-looking (Gilbert–Peierls shaped): each column
// is scattered dense, updated by the prior L columns in ascending
// order, then pivoted. See the SparseLU compatibility contract for why
// every arithmetic step mirrors the dense right-looking elimination.
func (s *SparseScratch) Factor(vals []complex128) (*SparseLU, error) {
	p := s.pat
	n := p.N
	if len(vals) != p.NNZ() {
		return nil, fmt.Errorf("%w: %d values for pattern with %d nonzeros", ErrShape, len(vals), p.NNZ())
	}
	out := &s.out
	if cap(out.pivot) < n {
		out.pivot = make([]int, n)
	}
	out.pivot = out.pivot[:n]
	sign := 1
	for i := range s.rowAt {
		s.rowAt[i] = int32(i)
		s.posOf[i] = int32(i)
	}
	s.cIdx = s.cIdx[:0]
	s.cVal = s.cVal[:0]

	for j := 0; j < n; j++ {
		// Scatter column j of A into x by original row index. x is all
		// +0 outside the column's structural entries: Bind clears it and
		// every prior column re-clears what it touched.
		for t := p.ColPtr[j]; t < p.ColPtr[j+1]; t++ {
			s.x[p.RowInd[t]] = vals[p.CSlot[t]]
		}
		// Left-looking update: apply prior L columns in ascending
		// elimination order. u[k][j] is read after columns < k have
		// updated it and is final — later steps never touch row k. Each
		// target entry receives one subtraction per step, in ascending
		// step order: the dense right-looking loop's exact sequence.
		s.uColPtr[j] = int32(len(s.cIdx))
		for k := 0; k < j; k++ {
			ukj := s.x[s.rowAt[k]]
			if ukj == 0 {
				// Its products are all ±0 and leave every finite
				// accumulator bit-unchanged; the dense loop performs
				// them, the sparse loop skips them.
				continue
			}
			s.cIdx = append(s.cIdx, int32(k))
			s.cVal = append(s.cVal, ukj)
			for t := s.lColPtr[k]; t < s.uColPtr[k+1]; t++ {
				s.x[s.cIdx[t]] -= s.cVal[t] * ukj
			}
		}
		s.lColPtr[j] = int32(len(s.cIdx))
		// Pivot search over positions j..n-1 ascending, strictly-greater
		// comparison — the dense scan verbatim. Positions with no
		// structural entry or fill hold exact +0 and can never beat a
		// nonzero maximum, so both scans pick the same row.
		pp, best := j, cmplx.Abs(s.x[s.rowAt[j]])
		for q := j + 1; q < n; q++ {
			if v := cmplx.Abs(s.x[s.rowAt[q]]); v > best {
				pp, best = q, v
			}
		}
		if best < PivotTolerance {
			clear(s.x)
			return nil, fmt.Errorf("%w: pivot %.3g at column %d", ErrSingular, best, j)
		}
		out.pivot[j] = pp
		if pp != j {
			rp, rj := s.rowAt[pp], s.rowAt[j]
			s.rowAt[j], s.rowAt[pp] = rp, rj
			s.posOf[rp], s.posOf[rj] = int32(j), int32(pp)
			sign = -sign
		}
		d := s.x[s.rowAt[j]]
		s.diag[j] = d
		// Gather L column j: the remaining candidates divided by the
		// pivot, exactly the l = a/d the dense loop stores. Explicit
		// zeros are dropped — the dense loop stores them but skips their
		// updates, and their solve products are signed zeros.
		for q := j + 1; q < n; q++ {
			r := s.rowAt[q]
			if xv := s.x[r]; xv != 0 {
				s.cIdx = append(s.cIdx, r)
				s.cVal = append(s.cVal, xv/d)
			}
			// Unconditional +0 store: a value that cancelled to −0 must
			// not leak into the next column's scatter (dense starts each
			// unstamped entry from +0).
			s.x[r] = 0
		}
		// Re-zero the scatter's U-region slots for the next column (the
		// L region was cleared while gathering). O(j) per column is
		// noise at MNA sizes and keeps every slot exactly +0.
		for q := 0; q <= j; q++ {
			s.x[s.rowAt[q]] = 0
		}
	}
	s.uColPtr[n] = int32(len(s.cIdx))
	s.finalize(out, sign)
	return out, nil
}

// finalize turns the interleaved column-phase store into the factor's
// final layout: U is transposed to row order (stable counting sort —
// columns were produced ascending, so each row's column list comes out
// ascending), then L is compacted in place with its row indices
// remapped from original rows to final pivot positions (the dense
// elimination swaps whole rows, already-written L included; posOf holds
// the net permutation).
func (s *SparseScratch) finalize(out *SparseLU, sign int) {
	n := s.pat.N
	clear(s.cnt)
	nu := 0
	for j := 0; j < n; j++ {
		for t := s.uColPtr[j]; t < s.lColPtr[j]; t++ {
			s.cnt[s.cIdx[t]]++
			nu++
		}
	}
	if cap(s.uIdx) < nu {
		s.uIdx = make([]int32, 0, nu+n)
		s.uVal = make([]complex128, 0, nu+n)
	}
	s.uIdx = s.uIdx[:nu]
	s.uVal = s.uVal[:nu]
	s.uRowPtr[0] = 0
	for i := 0; i < n; i++ {
		s.uRowPtr[i+1] = s.uRowPtr[i] + s.cnt[i]
		s.cnt[i] = s.uRowPtr[i]
	}
	for j := 0; j < n; j++ {
		for t := s.uColPtr[j]; t < s.lColPtr[j]; t++ {
			k := s.cIdx[t]
			w := s.cnt[k]
			s.uIdx[w] = int32(j)
			s.uVal[w] = s.cVal[t]
			s.cnt[k] = w + 1
		}
	}
	// Compact L: each column's run moves left over the space its U
	// entries vacated (the write cursor never passes a read position).
	var w int32
	for j := 0; j < n; j++ {
		start, end := s.lColPtr[j], s.uColPtr[j+1]
		s.lColPtr[j] = w
		for t := start; t < end; t++ {
			s.cIdx[w] = s.posOf[s.cIdx[t]]
			s.cVal[w] = s.cVal[t]
			w++
		}
	}
	s.lColPtr[n] = w

	out.n = n
	out.sign = sign
	out.lColPtr = s.lColPtr
	out.lIdx = s.cIdx[:w]
	out.lVal = s.cVal[:w]
	out.uRowPtr = s.uRowPtr
	out.uIdx = s.uIdx
	out.uVal = s.uVal
	out.diag = s.diag
	out.acc = s.acc
}
