package numeric

// Workspace bundles the scratch buffers of an in-place factor/solve —
// matrix storage, right-hand side and pivot permutation — so sweep loops
// can hand one set of buffers down the stack instead of allocating them
// per call. A Workspace is not safe for concurrent use; give each worker
// its own.
type Workspace struct {
	M     *Matrix
	RHS   []complex128
	Pivot []int

	// Sparse-layout buffers, populated by EnsureSparse: SVals holds the
	// assembled M = G + jω·C values under the bound pattern, and scratch
	// is the reusable factorization state. A workspace serves one layout
	// at a time; the dense buffers above stay untouched (and unallocated)
	// while a sweep runs sparse, and vice versa — only RHS is shared.
	// RHS and SVals are carved from one slab so a sparse warmup costs a
	// single value-buffer allocation.
	SVals   []complex128
	sslab   []complex128
	scratch SparseScratch
}

// NewWorkspace allocates buffers for an n-unknown system.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.Ensure(n)
	return w
}

// Ensure makes the buffers fit an n-unknown system, reallocating only
// when the current ones are too small (shrinking reuses the backing
// storage).
//
// The buffers are NOT zeroed: after any Ensure — and in particular after
// a shrink, where every retained element is stale data from the larger
// system — the caller must fully re-stamp M and RHS before factoring.
// Every assembly in this repo overwrites all n×n matrix entries and all n
// RHS entries (mna.System.assemble is a full scale-add plus a full rhs
// copy), which is what makes the non-zeroing reuse safe.
func (w *Workspace) Ensure(n int) {
	if w.M == nil || cap(w.M.Data) < n*n {
		w.M = NewMatrix(n, n)
	} else {
		w.M.Rows, w.M.Cols = n, n
		w.M.Data = w.M.Data[:n*n]
	}
	if cap(w.RHS) < n {
		w.RHS = make([]complex128, n)
	} else {
		w.RHS = w.RHS[:n]
	}
	if cap(w.Pivot) < n {
		w.Pivot = make([]int, n)
	} else {
		w.Pivot = w.Pivot[:n]
	}
}

// FactorSolve assembles nothing itself: it factors w.M in place using
// w.Pivot and solves for w.RHS, leaving the solution in w.RHS. It is the
// one-call form of the FactorInPlace + SolveInPlace pair for callers that
// have already stamped M and RHS.
//
// The workspace owns its buffers, so a pivot slice whose length drifted
// from M.Rows (a caller resized M by hand instead of through Ensure) is
// repaired here — resliced within capacity or reallocated — rather than
// surfaced as FactorInPlace's ErrShape.
func (w *Workspace) FactorSolve() error {
	if n := w.M.Rows; len(w.Pivot) != n {
		if cap(w.Pivot) >= n {
			w.Pivot = w.Pivot[:n]
		} else {
			w.Pivot = make([]int, n)
		}
	}
	lu, err := FactorInPlace(w.M, w.Pivot)
	if err != nil {
		return err
	}
	return lu.SolveInPlace(w.RHS)
}

// EnsureSparse makes the buffers fit a sparse system under the given
// pattern, following the same grow-only, non-zeroing reuse contract as
// Ensure: SVals is NOT cleared here — every sparse assembly overwrites
// all pattern slots (the fused scale-add walks the whole value array) —
// and shrinking to a smaller pattern reuses the backing storage.
func (w *Workspace) EnsureSparse(p *Pattern) {
	n, nnz := p.N, p.NNZ()
	if cap(w.sslab) < n+nnz {
		w.sslab = make([]complex128, n+nnz)
	}
	w.RHS = w.sslab[0:n:n]
	w.SVals = w.sslab[n : n+nnz : n+nnz]
	w.scratch.Bind(p)
}

// SparseFactor factors SVals under the pattern bound by EnsureSparse.
// The factor aliases the workspace scratch and is valid until the next
// SparseFactor call.
func (w *Workspace) SparseFactor() (*SparseLU, error) {
	return w.scratch.Factor(w.SVals)
}

// SparseFactorSolve is FactorSolve's sparse twin: it factors SVals and
// solves for w.RHS in place, allocation-free after warmup, with results
// bit-identical to assembling the same values dense and calling
// FactorSolve.
func (w *Workspace) SparseFactorSolve() error {
	lu, err := w.scratch.Factor(w.SVals)
	if err != nil {
		return err
	}
	return lu.SolveInPlace(w.RHS)
}
