package numeric

// Workspace bundles the scratch buffers of an in-place factor/solve —
// matrix storage, right-hand side and pivot permutation — so sweep loops
// can hand one set of buffers down the stack instead of allocating them
// per call. A Workspace is not safe for concurrent use; give each worker
// its own.
type Workspace struct {
	M     *Matrix
	RHS   []complex128
	Pivot []int
}

// NewWorkspace allocates buffers for an n-unknown system.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.Ensure(n)
	return w
}

// Ensure makes the buffers fit an n-unknown system, reallocating only
// when the current ones are too small (shrinking reuses the backing
// storage).
//
// The buffers are NOT zeroed: after any Ensure — and in particular after
// a shrink, where every retained element is stale data from the larger
// system — the caller must fully re-stamp M and RHS before factoring.
// Every assembly in this repo overwrites all n×n matrix entries and all n
// RHS entries (mna.System.assemble is a full scale-add plus a full rhs
// copy), which is what makes the non-zeroing reuse safe.
func (w *Workspace) Ensure(n int) {
	if w.M == nil || cap(w.M.Data) < n*n {
		w.M = NewMatrix(n, n)
	} else {
		w.M.Rows, w.M.Cols = n, n
		w.M.Data = w.M.Data[:n*n]
	}
	if cap(w.RHS) < n {
		w.RHS = make([]complex128, n)
	} else {
		w.RHS = w.RHS[:n]
	}
	if cap(w.Pivot) < n {
		w.Pivot = make([]int, n)
	} else {
		w.Pivot = w.Pivot[:n]
	}
}

// FactorSolve assembles nothing itself: it factors w.M in place using
// w.Pivot and solves for w.RHS, leaving the solution in w.RHS. It is the
// one-call form of the FactorInPlace + SolveInPlace pair for callers that
// have already stamped M and RHS.
//
// The workspace owns its buffers, so a pivot slice whose length drifted
// from M.Rows (a caller resized M by hand instead of through Ensure) is
// repaired here — resliced within capacity or reallocated — rather than
// surfaced as FactorInPlace's ErrShape.
func (w *Workspace) FactorSolve() error {
	if n := w.M.Rows; len(w.Pivot) != n {
		if cap(w.Pivot) >= n {
			w.Pivot = w.Pivot[:n]
		} else {
			w.Pivot = make([]int, n)
		}
	}
	lu, err := FactorInPlace(w.M, w.Pivot)
	if err != nil {
		return err
	}
	return lu.SolveInPlace(w.RHS)
}
