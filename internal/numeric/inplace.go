package numeric

import (
	"fmt"
	"math/cmplx"
)

// FactorInPlace computes the LU factorization overwriting a's storage —
// the allocation-free variant of Factor for hot sweep loops. The LU is
// returned by value so it never escapes to the heap; it aliases a, and a
// must not be used afterwards except through the LU. A nil pivot slice is
// allocated; a non-nil one is reused in place — resliced within its
// capacity when its length drifted from n, so the returned LU always
// aliases the caller's recycled buffer — and a buffer too small to hold n
// pivots is an ErrShape error, never a silent fresh allocation that would
// orphan the caller's buffer.
func FactorInPlace(a *Matrix, pivot []int) (LU, error) {
	if a.Rows != a.Cols {
		return LU{}, fmt.Errorf("%w: cannot factor %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	if pivot == nil {
		pivot = make([]int, n)
	} else if len(pivot) != n {
		if cap(pivot) < n {
			return LU{}, fmt.Errorf("%w: pivot buffer holds %d (cap %d), want %d", ErrShape, len(pivot), cap(pivot), n)
		}
		pivot = pivot[:n]
	}
	sign := 1
	for k := 0; k < n; k++ {
		p, best := k, cmplx.Abs(a.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(a.At(i, k)); v > best {
				p, best = i, v
			}
		}
		if best < PivotTolerance {
			return LU{}, fmt.Errorf("%w: pivot %.3g at column %d", ErrSingular, best, k)
		}
		pivot[k] = p
		if p != k {
			rp, rk := a.Row(p), a.Row(k)
			for j := 0; j < n; j++ {
				rp[j], rk[j] = rk[j], rp[j]
			}
			sign = -sign
		}
		d := a.At(k, k)
		for i := k + 1; i < n; i++ {
			l := a.At(i, k) / d
			a.Set(i, k, l)
			if l == 0 {
				continue
			}
			ri, rk := a.Row(i), a.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= l * rk[j]
			}
		}
	}
	return LU{lu: a, pivot: pivot, sign: sign}, nil
}

// SolveInPlace solves A·x = b writing the solution over b (no
// allocations).
func (f *LU) SolveInPlace(b []complex128) error {
	n := f.N()
	if len(b) != n {
		return fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), n)
	}
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
	}
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		var s complex128
		for j := 0; j < i; j++ {
			s += row[j] * b[j]
		}
		b[i] -= s
	}
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		var s complex128
		for j := i + 1; j < n; j++ {
			s += row[j] * b[j]
		}
		b[i] = (b[i] - s) / row[i]
	}
	return nil
}

// Pivot exposes the permutation buffer so hot loops can recycle it.
func (f *LU) Pivot() []int { return f.pivot }
