package numeric

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// LogSpace returns n logarithmically spaced values from lo to hi inclusive.
// lo and hi must be positive and n >= 2 (n == 1 returns just lo).
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic(fmt.Sprintf("numeric: LogSpace requires positive bounds, got [%g, %g]", lo, hi))
	}
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	llo, lhi := math.Log10(lo), math.Log10(hi)
	step := (lhi - llo) / float64(n-1)
	for i := range out {
		out[i] = math.Pow(10, llo+float64(i)*step)
	}
	// Pin the endpoints exactly to avoid drift at the boundaries.
	out[0], out[n-1] = lo, hi
	return out
}

// LinSpace returns n linearly spaced values from lo to hi inclusive.
func LinSpace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Decades returns the number of decades spanned by [lo, hi].
func Decades(lo, hi float64) float64 {
	if lo <= 0 || hi <= 0 {
		panic(fmt.Sprintf("numeric: Decades requires positive bounds, got [%g, %g]", lo, hi))
	}
	return math.Log10(hi / lo)
}

// AbsVec returns element-wise magnitudes.
func AbsVec(v []complex128) []float64 {
	out := make([]float64, len(v))
	for i, c := range v {
		out[i] = cmplx.Abs(c)
	}
	return out
}

// MaxFloat returns the maximum of a non-empty slice.
func MaxFloat(v []float64) float64 {
	if len(v) == 0 {
		panic("numeric: MaxFloat of empty slice")
	}
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// MinFloat returns the minimum of a non-empty slice.
func MinFloat(v []float64) float64 {
	if len(v) == 0 {
		panic("numeric: MinFloat of empty slice")
	}
	min := v[0]
	for _, x := range v[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Mean returns the arithmetic mean of a slice (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Median returns the median of a slice (0 for empty input). The input is
// not modified.
func Median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	c := append([]float64(nil), v...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Db converts a magnitude ratio to decibels (20·log10). Zero maps to -Inf.
func Db(mag float64) float64 {
	if mag <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(mag)
}

// FromDb converts decibels back to a magnitude ratio.
func FromDb(db float64) float64 { return math.Pow(10, db/20) }

// CloseRel reports whether a and b agree to within relative tolerance rel
// (falling back to absolute comparison near zero).
func CloseRel(a, b, rel float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1e-300 {
		return true
	}
	if m < 1 {
		return d <= rel
	}
	return d/m <= rel
}
