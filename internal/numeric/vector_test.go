package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogSpace(t *testing.T) {
	v := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	if len(v) != 4 {
		t.Fatalf("len = %d, want 4", len(v))
	}
	for i := range v {
		if math.Abs(v[i]-want[i]) > 1e-9*want[i] {
			t.Errorf("v[%d] = %g, want %g", i, v[i], want[i])
		}
	}
}

func TestLogSpaceEndpointsExact(t *testing.T) {
	v := LogSpace(3.7, 91.2, 17)
	if v[0] != 3.7 || v[len(v)-1] != 91.2 {
		t.Fatalf("endpoints %g..%g, want 3.7..91.2", v[0], v[len(v)-1])
	}
}

func TestLogSpaceDegenerate(t *testing.T) {
	if got := LogSpace(5, 50, 1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("n=1: got %v", got)
	}
	if got := LogSpace(5, 50, 0); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
}

func TestLogSpacePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive bound")
		}
	}()
	LogSpace(0, 10, 3)
}

func TestLinSpace(t *testing.T) {
	v := LinSpace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range v {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Errorf("v[%d] = %g, want %g", i, v[i], want[i])
		}
	}
	if got := LinSpace(2, 9, 1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("n=1: got %v", got)
	}
}

func TestDecades(t *testing.T) {
	if d := Decades(10, 10000); math.Abs(d-3) > 1e-12 {
		t.Fatalf("Decades(10,10000) = %g, want 3", d)
	}
}

func TestAbsVec(t *testing.T) {
	v := AbsVec([]complex128{3 + 4i, -2, 1i})
	want := []float64{5, 2, 1}
	for i := range v {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Errorf("v[%d] = %g, want %g", i, v[i], want[i])
		}
	}
}

func TestMinMaxMeanMedian(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5}
	if MaxFloat(v) != 5 {
		t.Error("MaxFloat")
	}
	if MinFloat(v) != 1 {
		t.Error("MinFloat")
	}
	if m := Mean(v); math.Abs(m-2.8) > 1e-12 {
		t.Errorf("Mean = %g, want 2.8", m)
	}
	if m := Median(v); m != 3 {
		t.Errorf("Median = %g, want 3", m)
	}
	if m := Median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("even Median = %g, want 2.5", m)
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty Mean/Median should be 0")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	v := []float64{3, 1, 2}
	Median(v)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Fatalf("Median mutated input: %v", v)
	}
}

func TestDbRoundTrip(t *testing.T) {
	for _, mag := range []float64{0.001, 0.5, 1, 2, 1000} {
		if got := FromDb(Db(mag)); math.Abs(got-mag) > 1e-9*mag {
			t.Errorf("round trip %g -> %g", mag, got)
		}
	}
	if !math.IsInf(Db(0), -1) {
		t.Error("Db(0) should be -Inf")
	}
}

func TestCloseRel(t *testing.T) {
	if !CloseRel(100, 100.5, 0.01) {
		t.Error("100 vs 100.5 at 1% should be close")
	}
	if CloseRel(100, 110, 0.01) {
		t.Error("100 vs 110 at 1% should not be close")
	}
	if !CloseRel(0, 1e-320, 0.01) {
		t.Error("both ~0 should be close")
	}
}

// Property: LogSpace output is strictly increasing and within bounds.
func TestLogSpaceMonotoneProperty(t *testing.T) {
	f := func(a, b uint16, nRaw uint8) bool {
		lo := float64(a%1000) + 1
		hi := lo + float64(b%10000) + 1
		n := int(nRaw%50) + 2
		v := LogSpace(lo, hi, n)
		if len(v) != n {
			return false
		}
		for i := 1; i < len(v); i++ {
			if v[i] <= v[i-1] {
				return false
			}
		}
		return v[0] >= lo && v[len(v)-1] <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mean lies within [Min, Max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			v[i] = float64(x)
		}
		m := Mean(v)
		return m >= MinFloat(v)-1e-9 && m <= MaxFloat(v)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
