package numeric

import (
	"errors"
	"testing"
)

// TestFactorInPlacePivotReslice checks that a pivot buffer whose length
// drifted but whose capacity still fits is resliced in place: the
// returned LU must alias the caller's backing array, not a silently
// allocated replacement that would orphan the recycled buffer.
func TestFactorInPlacePivotReslice(t *testing.T) {
	a, _ := testMatrix()
	buf := make([]int, 2, 8) // wrong length, ample capacity
	lu, err := FactorInPlace(a.Clone(), buf)
	if err != nil {
		t.Fatal(err)
	}
	got := lu.Pivot()
	if len(got) != 4 {
		t.Fatalf("pivot length = %d, want 4", len(got))
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("LU pivot does not alias the caller's buffer")
	}
}

// TestFactorInPlacePivotTooSmall checks the mismatch path that used to
// silently allocate: a non-nil pivot buffer with insufficient capacity is
// an ErrShape error.
func TestFactorInPlacePivotTooSmall(t *testing.T) {
	a, _ := testMatrix()
	if _, err := FactorInPlace(a.Clone(), make([]int, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

// TestFactorInPlaceNilPivotAllocates keeps the documented nil behavior.
func TestFactorInPlaceNilPivotAllocates(t *testing.T) {
	a, _ := testMatrix()
	lu, err := FactorInPlace(a.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lu.Pivot()) != 4 {
		t.Fatalf("pivot length = %d, want 4", len(lu.Pivot()))
	}
}

// TestEnsureShrinkKeepsStaleStorage pins the documented Ensure contract:
// shrinking reuses the backing storage without zeroing, so stale values
// from the larger system remain visible and callers must fully re-stamp
// before factoring.
func TestEnsureShrinkKeepsStaleStorage(t *testing.T) {
	w := NewWorkspace(4)
	for i := range w.M.Data {
		w.M.Data[i] = complex(float64(i+1), 0)
	}
	for i := range w.RHS {
		w.RHS[i] = complex(float64(i+1), 0)
	}
	w.Ensure(2)
	if w.M.Rows != 2 || w.M.Cols != 2 || len(w.RHS) != 2 || len(w.Pivot) != 2 {
		t.Fatalf("shrink shapes: M %dx%d, rhs %d, pivot %d", w.M.Rows, w.M.Cols, len(w.RHS), len(w.Pivot))
	}
	// The contract: storage is stale, NOT zeroed — (0,0) still holds the
	// old element 0, and (1,1) holds old element 3 (row-major reindexing).
	if w.M.At(0, 0) != 1 || w.M.At(1, 1) != 4 {
		t.Fatalf("shrink zeroed or moved storage: M = %v", w.M.Data)
	}
	if w.RHS[1] != 2 {
		t.Fatalf("shrink zeroed RHS: %v", w.RHS)
	}
	// Growing back reuses the same backing array, stale data included.
	data := &w.M.Data[:1][0]
	w.Ensure(4)
	if &w.M.Data[:1][0] != data {
		t.Fatal("grow within capacity reallocated the matrix storage")
	}
	if w.M.At(0, 1) != 2 {
		t.Fatalf("grow zeroed storage: M(0,1) = %v", w.M.At(0, 1))
	}
}

// TestFactorSolveRepairsPivotDrift checks FactorSolve's defense: a pivot
// slice whose length drifted from M.Rows is repaired (reslice within
// capacity, else reallocate) instead of erroring or corrupting the solve.
func TestFactorSolveRepairsPivotDrift(t *testing.T) {
	a, b := testMatrix()
	want, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, drift := range []func(w *Workspace){
		func(w *Workspace) { w.Pivot = w.Pivot[:1] },       // short, capacity fits
		func(w *Workspace) { w.Pivot = make([]int, 0, 1) }, // capacity too small
		func(w *Workspace) { w.Pivot = append(w.Pivot, 9) },
	} {
		w := NewWorkspace(4)
		copy(w.M.Data, a.Data)
		copy(w.RHS, b)
		drift(w)
		if err := w.FactorSolve(); err != nil {
			t.Fatalf("FactorSolve with drifted pivot: %v", err)
		}
		if len(w.Pivot) != 4 {
			t.Fatalf("pivot length after repair = %d, want 4", len(w.Pivot))
		}
		for i := range want {
			if d := w.RHS[i] - want[i]; d != 0 {
				t.Fatalf("solution[%d] = %v, want %v", i, w.RHS[i], want[i])
			}
		}
	}
}
