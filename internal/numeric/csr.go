package numeric

import (
	"fmt"
	"slices"
)

// Pattern is the shared symbolic structure of a sparse complex matrix:
// the CSR row layout plus a precomputed CSC (column) view of the same
// nonzero set. It is built once per system — the MNA stamp structure is
// fixed across the frequency grid and across fault patches — and then
// shared read-only by every value array that uses the layout (the G
// cache, the C cache, and each workspace's assembled M = G + jω·C), so
// the symbolic side of assembly, patching and factorization is never
// recomputed per point.
//
// The CSC view (ColPtr/RowInd/CSlot) is the precomputed symbolic phase
// of the left-looking sparse LU: the factorization walks columns, and
// CSlot maps each column-order entry back to its CSR value slot so a
// column scatter never searches.
//
// All index arrays live in one backing slab, so a Pattern costs a single
// allocation beyond the builder's coordinate buffer.
type Pattern struct {
	N      int
	RowPtr []int32 // length N+1
	ColIdx []int32 // length NNZ, sorted ascending within each row
	ColPtr []int32 // length N+1
	RowInd []int32 // length NNZ, sorted ascending within each column
	CSlot  []int32 // CSR slot of each CSC entry
}

// PackCoord packs a matrix coordinate for PatternFromCoords. Coordinates
// are collected as packed int64s so a stamp walk can record its touched
// entries into a single flat buffer.
func PackCoord(i, j int) int64 { return int64(i)<<32 | int64(j) }

// PatternFromCoords builds the shared symbolic pattern of an n×n matrix
// from a list of packed (row, col) coordinates. Duplicates are allowed
// (stamps touch the same entry repeatedly) and are deduplicated; coords
// is sorted in place and not retained.
func PatternFromCoords(n int, coords []int64) (*Pattern, error) {
	p := &Pattern{}
	if err := p.InitFromCoords(n, coords); err != nil {
		return nil, err
	}
	return p, nil
}

// InitFromCoords is PatternFromCoords into a caller-owned struct, so a
// holder that embeds the Pattern (mna.System does) pays for the index
// slab but not for a separate struct allocation. Any previous state of p
// is discarded.
func (p *Pattern) InitFromCoords(n int, coords []int64) error {
	slices.Sort(coords)
	coords = slices.Compact(coords)
	nnz := len(coords)
	for _, c := range coords {
		i, j := int(c>>32), int(c&0xffffffff)
		if i < 0 || i >= n || j < 0 || j >= n {
			return fmt.Errorf("%w: pattern coordinate (%d,%d) outside %dx%d", ErrShape, i, j, n, n)
		}
	}
	// One slab for every index array plus the CSC fill cursor, which only
	// lives for the duration of this build and borrows the slab's tail.
	slab := make([]int32, 2*(n+1)+3*nnz+n)
	*p = Pattern{
		N:      n,
		RowPtr: slab[: n+1 : n+1],
		ColIdx: slab[n+1 : n+1+nnz : n+1+nnz],
		ColPtr: slab[n+1+nnz : 2*(n+1)+nnz : 2*(n+1)+nnz],
		RowInd: slab[2*(n+1)+nnz : 2*(n+1)+2*nnz : 2*(n+1)+2*nnz],
		CSlot:  slab[2*(n+1)+2*nnz : 2*(n+1)+3*nnz : 2*(n+1)+3*nnz],
	}
	cur := slab[2*(n+1)+3*nnz:]
	// Coordinates are sorted by (row, col), which is exactly CSR order.
	for s, c := range coords {
		i, j := int32(c>>32), int32(c&0xffffffff)
		p.RowPtr[i+1]++
		p.ColIdx[s] = j
		p.ColPtr[j+1]++
	}
	for i := 0; i < n; i++ {
		p.RowPtr[i+1] += p.RowPtr[i]
		p.ColPtr[i+1] += p.ColPtr[i]
	}
	// Fill the CSC view: walking CSR rows in order appends to each column
	// in ascending row order.
	copy(cur, p.ColPtr[:n])
	for i := 0; i < n; i++ {
		for s := p.RowPtr[i]; s < p.RowPtr[i+1]; s++ {
			j := p.ColIdx[s]
			t := cur[j]
			p.RowInd[t] = int32(i)
			p.CSlot[t] = s
			cur[j] = t + 1
		}
	}
	return nil
}

// NNZ returns the number of stored entries.
func (p *Pattern) NNZ() int { return len(p.ColIdx) }

// SlotOf returns the value-array slot of entry (i, j), or −1 when the
// entry is not part of the pattern. This is the component→nonzero-slot
// index used to lower stamp patches to direct value writes: column
// indices are sorted within each row, so the lookup is a binary search
// over the (typically tiny) row.
func (p *Pattern) SlotOf(i, j int) int {
	lo, hi := int(p.RowPtr[i]), int(p.RowPtr[i+1])
	jj := int32(j)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.ColIdx[mid] < jj {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(p.RowPtr[i+1]) && p.ColIdx[lo] == jj {
		return lo
	}
	return -1
}

// ScatterInto expands CSR values into a dense matrix, zeroing it first.
// Entries outside the pattern are exact +0, matching what the dense
// stamp caches hold there, so a scatter of sparse-assembled values is
// bit-identical to a dense assembly of the same system.
func (p *Pattern) ScatterInto(m *Matrix, vals []complex128) error {
	if m.Rows != p.N || m.Cols != p.N || len(vals) != p.NNZ() {
		return fmt.Errorf("%w: scatter %d nnz into %dx%d (pattern %d, nnz %d)",
			ErrShape, len(vals), m.Rows, m.Cols, p.N, p.NNZ())
	}
	m.Zero()
	for i := 0; i < p.N; i++ {
		row := m.Row(i)
		for s := p.RowPtr[i]; s < p.RowPtr[i+1]; s++ {
			row[p.ColIdx[s]] = vals[s]
		}
	}
	return nil
}

// CSRValues couples a shared Pattern with one value array, exposing the
// same Add surface as *Matrix so the stamp walks (component stamps,
// per-point opamp rows, patch deltas) write either layout through one
// interface. Adds outside the pattern panic: the pattern was collected
// from the same walk, so a miss is a programming error, not a data
// error.
type CSRValues struct {
	P    *Pattern
	Vals []complex128
}

// Add accumulates v into entry (i, j) via the slot index.
func (c CSRValues) Add(i, j int, v complex128) {
	s := c.P.SlotOf(i, j)
	if s < 0 {
		panic(fmt.Sprintf("numeric: CSR add outside pattern at (%d,%d)", i, j))
	}
	c.Vals[s] += v
}

// DotSparse accumulates Σ val[k]·dense[idx[k]] over the stored entries,
// skipping explicit zeros — the sparse dot kernel of the Sherman–Morrison
// update. With at most two stored entries (the incidence vectors MNA
// rank-1 patches produce) the result is bit-identical to the dense
// skip-zero loop regardless of index order; larger operands should keep
// idx ascending to preserve that equivalence.
func DotSparse(idx []int, val, dense []complex128) complex128 {
	var acc complex128
	for k, i := range idx {
		if v := val[k]; v != 0 {
			acc += v * dense[i]
		}
	}
	return acc
}

// ScatterSparse writes the stored entries into a zeroed dense vector —
// the sparse scatter (axpy with an implicit zero target) used to expand
// a rank-1 factor for a triangular solve.
func ScatterSparse(idx []int, val, dense []complex128) {
	clear(dense)
	for k, i := range idx {
		dense[i] = val[k]
	}
}
