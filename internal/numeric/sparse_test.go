package numeric

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// sameBits reports bit-level equality of two complex values, which is
// stricter than == (it distinguishes -0 from +0). The sparse layout
// promises bit-identical results, so the tests hold it to that.
func sameBits(a, b complex128) bool {
	return math.Float64bits(real(a)) == math.Float64bits(real(b)) &&
		math.Float64bits(imag(a)) == math.Float64bits(imag(b))
}

// patternOf extracts the structural nonzeros of a dense matrix into a
// Pattern plus the matching CSR value array.
func patternOf(t testing.TB, m *Matrix) (*Pattern, []complex128) {
	t.Helper()
	var coords []int64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != 0 {
				coords = append(coords, PackCoord(i, j))
			}
		}
	}
	p, err := PatternFromCoords(m.Rows, coords)
	if err != nil {
		t.Fatalf("PatternFromCoords: %v", err)
	}
	vals := make([]complex128, p.NNZ())
	for i := 0; i < p.N; i++ {
		for s := p.RowPtr[i]; s < p.RowPtr[i+1]; s++ {
			vals[s] = m.At(i, int(p.ColIdx[s]))
		}
	}
	return p, vals
}

// randSparse builds a random diagonally-dominant sparse matrix: always
// structurally nonzero on the diagonal, each off-diagonal present with
// probability density.
func randSparse(rng *rand.Rand, n int, density float64) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if rng.Float64() < density {
				v := complex(rng.NormFloat64(), rng.NormFloat64())
				m.Set(i, j, v)
				rowSum += math.Hypot(real(v), imag(v))
			}
		}
		m.Set(i, i, complex(rowSum+1+rng.Float64(), rng.NormFloat64()))
	}
	return m
}

func TestPatternFromCoords(t *testing.T) {
	coords := []int64{
		PackCoord(1, 1), PackCoord(0, 0), PackCoord(0, 2),
		PackCoord(2, 1), PackCoord(0, 0), // duplicate
		PackCoord(2, 2),
	}
	p, err := PatternFromCoords(3, coords)
	if err != nil {
		t.Fatal(err)
	}
	if p.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5 (duplicate not merged?)", p.NNZ())
	}
	wantRowPtr := []int32{0, 2, 3, 5}
	for i, w := range wantRowPtr {
		if p.RowPtr[i] != w {
			t.Fatalf("RowPtr = %v, want %v", p.RowPtr, wantRowPtr)
		}
	}
	wantColIdx := []int32{0, 2, 1, 1, 2}
	for s, w := range wantColIdx {
		if p.ColIdx[s] != w {
			t.Fatalf("ColIdx = %v, want %v", p.ColIdx, wantColIdx)
		}
	}
	// CSC view: column 0 has row 0; column 1 rows 1,2; column 2 rows 0,2.
	wantColPtr := []int32{0, 1, 3, 5}
	wantRowInd := []int32{0, 1, 2, 0, 2}
	for i, w := range wantColPtr {
		if p.ColPtr[i] != w {
			t.Fatalf("ColPtr = %v, want %v", p.ColPtr, wantColPtr)
		}
	}
	for s, w := range wantRowInd {
		if p.RowInd[s] != w {
			t.Fatalf("RowInd = %v, want %v", p.RowInd, wantRowInd)
		}
	}
	// CSlot must map every CSC entry back to the CSR slot of the same
	// coordinate.
	for j := 0; j < p.N; j++ {
		for tt := p.ColPtr[j]; tt < p.ColPtr[j+1]; tt++ {
			i := int(p.RowInd[tt])
			if got := int(p.CSlot[tt]); got != p.SlotOf(i, j) {
				t.Fatalf("CSlot(%d,%d) = %d, want %d", i, j, got, p.SlotOf(i, j))
			}
		}
	}
	if got := p.SlotOf(1, 0); got != -1 {
		t.Fatalf("SlotOf(1,0) = %d, want -1", got)
	}
	if _, err := PatternFromCoords(2, []int64{PackCoord(0, 2)}); !errors.Is(err, ErrShape) {
		t.Fatalf("out-of-range coord: err = %v, want ErrShape", err)
	}
}

func TestCSRValuesAdd(t *testing.T) {
	p, _ := PatternFromCoords(2, []int64{PackCoord(0, 0), PackCoord(1, 1), PackCoord(0, 1)})
	cv := CSRValues{P: p, Vals: make([]complex128, p.NNZ())}
	cv.Add(0, 1, 2i)
	cv.Add(0, 1, 1)
	if got := cv.Vals[p.SlotOf(0, 1)]; got != 1+2i {
		t.Fatalf("accumulated value = %v, want 1+2i", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add outside pattern did not panic")
		}
	}()
	cv.Add(1, 0, 1)
}

func TestScatterInto(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dense := randSparse(rng, 6, 0.4)
	p, vals := patternOf(t, dense)
	got := NewMatrix(6, 6)
	// Pre-soil the target: ScatterInto must zero it first.
	got.Set(3, 4, 99)
	if err := p.ScatterInto(got, vals); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if !sameBits(got.At(i, j), dense.At(i, j)) {
				t.Fatalf("scatter (%d,%d) = %v, want %v", i, j, got.At(i, j), dense.At(i, j))
			}
		}
	}
	if err := p.ScatterInto(NewMatrix(5, 5), vals); !errors.Is(err, ErrShape) {
		t.Fatalf("shape mismatch: err = %v, want ErrShape", err)
	}
}

// TestSparseLUMatchesDenseExact is the core bit-identity property: over
// random diagonally-dominant systems of varying size and density, the
// sparse factorization must reproduce the dense FactorInPlace exactly —
// same pivot sequence, bit-identical determinant, and bit-identical
// solutions.
func TestSparseLUMatchesDenseExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(14)
		density := 0.1 + 0.8*rng.Float64()
		dense := randSparse(rng, n, density)
		p, vals := patternOf(t, dense)

		scratch := NewSparseScratch(p)
		slu, err := scratch.Factor(vals)
		if err != nil {
			t.Fatalf("trial %d: sparse factor: %v", trial, err)
		}
		work := dense.Clone()
		dlu, err := FactorInPlace(work, nil)
		if err != nil {
			t.Fatalf("trial %d: dense factor: %v", trial, err)
		}
		for k, dp := range dlu.Pivot() {
			if slu.Pivot()[k] != dp {
				t.Fatalf("trial %d: pivot[%d] = %d, dense %d", trial, k, slu.Pivot()[k], dp)
			}
		}
		if !sameBits(slu.Det(), dlu.Det()) {
			t.Fatalf("trial %d: Det = %v, dense %v", trial, slu.Det(), dlu.Det())
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		bs := append([]complex128(nil), b...)
		bd := append([]complex128(nil), b...)
		if err := slu.SolveInPlace(bs); err != nil {
			t.Fatalf("trial %d: sparse solve: %v", trial, err)
		}
		if err := dlu.SolveInPlace(bd); err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		for i := range bs {
			if !sameBits(bs[i], bd[i]) {
				t.Fatalf("trial %d: x[%d] = %v, dense %v (Δ=%g)", trial, i, bs[i], bd[i],
					math.Abs(real(bs[i])-real(bd[i]))+math.Abs(imag(bs[i])-imag(bd[i])))
			}
		}
	}
}

// TestSparseLUPivoting forces row swaps (zero diagonal) and checks the
// permutation logic against dense.
func TestSparseLUPivoting(t *testing.T) {
	// Anti-diagonal with an extra entry: every step must pivot.
	dense, err := FromRows([][]complex128{
		{0, 0, 2},
		{0, 3, 1i},
		{5, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, vals := patternOf(t, dense)
	slu, err := NewSparseScratch(p).Factor(vals)
	if err != nil {
		t.Fatal(err)
	}
	dlu, err := FactorInPlace(dense.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameBits(slu.Det(), dlu.Det()) {
		t.Fatalf("Det = %v, dense %v", slu.Det(), dlu.Det())
	}
	b := []complex128{1, 2, 3}
	bs := append([]complex128(nil), b...)
	if err := slu.SolveInPlace(bs); err != nil {
		t.Fatal(err)
	}
	if err := dlu.SolveInPlace(b); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if !sameBits(bs[i], b[i]) {
			t.Fatalf("x[%d] = %v, dense %v", i, bs[i], b[i])
		}
	}
}

// TestSparseLUSingularMatchesDense pins the error contract: same
// sentinel, same pivot magnitude, same column index as the dense path.
func TestSparseLUSingularMatchesDense(t *testing.T) {
	dense, err := FromRows([][]complex128{
		{1, 2, 0},
		{2, 4, 0}, // row 1 = 2·row 0 → singular at column 1
		{0, 1, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, vals := patternOf(t, dense)
	_, serr := NewSparseScratch(p).Factor(vals)
	_, derr := FactorInPlace(dense.Clone(), nil)
	if !errors.Is(serr, ErrSingular) {
		t.Fatalf("sparse err = %v, want ErrSingular", serr)
	}
	if derr == nil || serr.Error() != derr.Error() {
		t.Fatalf("error text diverges:\nsparse: %v\ndense:  %v", serr, derr)
	}
}

func TestSparseLUValueCountMismatch(t *testing.T) {
	p, _ := PatternFromCoords(2, []int64{PackCoord(0, 0), PackCoord(1, 1)})
	if _, err := NewSparseScratch(p).Factor(make([]complex128, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestSparseLUSolveShape(t *testing.T) {
	p, _ := PatternFromCoords(2, []int64{PackCoord(0, 0), PackCoord(1, 1)})
	slu, err := NewSparseScratch(p).Factor([]complex128{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := slu.SolveInPlace(make([]complex128, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

// TestSparseLUDetach checks that a detached factor survives the scratch
// being refactored with different values, and that arena growth leaves
// earlier detached factors intact.
func TestSparseLUDetach(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dense := randSparse(rng, 8, 0.35)
	p, vals := patternOf(t, dense)
	scratch := NewSparseScratch(p)
	slu, err := scratch.Factor(vals)
	if err != nil {
		t.Fatal(err)
	}
	var ints []int32
	var cplx []complex128
	var pivs []int
	kept := slu.Detach(&ints, &cplx, &pivs)

	// Clobber the scratch with a different system.
	vals2 := append([]complex128(nil), vals...)
	for i := range vals2 {
		vals2[i] *= 3
	}
	if _, err := scratch.Factor(vals2); err != nil {
		t.Fatal(err)
	}
	// Grow the arenas past their caps with further detaches.
	for i := 0; i < 8; i++ {
		slu2, err := scratch.Factor(vals2)
		if err != nil {
			t.Fatal(err)
		}
		slu2.Detach(&ints, &cplx, &pivs)
	}

	dlu, err := FactorInPlace(dense.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]complex128, 8)
	for i := range b {
		b[i] = complex(float64(i)+1, -float64(i))
	}
	bk := append([]complex128(nil), b...)
	if err := kept.SolveInPlace(bk); err != nil {
		t.Fatal(err)
	}
	if err := dlu.SolveInPlace(b); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if !sameBits(bk[i], b[i]) {
			t.Fatalf("detached x[%d] = %v, dense %v", i, bk[i], b[i])
		}
	}
	if !sameBits(kept.Det(), dlu.Det()) {
		t.Fatalf("detached Det = %v, dense %v", kept.Det(), dlu.Det())
	}
}

// TestSparseScratchReuseAllocFree: after the first factorization, the
// factor+solve cycle must not allocate — the allocation-free-after-warmup
// contract the sweep hot path depends on.
func TestSparseScratchReuseAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dense := randSparse(rng, 10, 0.3)
	p, vals := patternOf(t, dense)
	scratch := NewSparseScratch(p)
	b := make([]complex128, 10)
	if _, err := scratch.Factor(vals); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		slu, err := scratch.Factor(vals)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			b[i] = complex(float64(i), 1)
		}
		if err := slu.SolveInPlace(b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("factor+solve allocated %v times per run after warmup, want 0", allocs)
	}
}

func TestDotScatterSparse(t *testing.T) {
	dense := []complex128{1, 2, 3, 4}
	idx := []int{0, 3}
	val := []complex128{2i, -1}
	if got := DotSparse(idx, val, dense); got != 2i*1+(-1)*4 {
		t.Fatalf("DotSparse = %v", got)
	}
	// Explicit zeros are skipped, not multiplied.
	if got := DotSparse([]int{1, 2}, []complex128{0, 5}, dense); got != 15 {
		t.Fatalf("DotSparse with zero entry = %v, want 15", got)
	}
	out := []complex128{9, 9, 9, 9}
	ScatterSparse(idx, val, out)
	want := []complex128{2i, 0, 0, -1}
	for i := range out {
		if !sameBits(out[i], want[i]) {
			t.Fatalf("ScatterSparse = %v, want %v", out, want)
		}
	}
}

// TestSolveRankOneSparseBackends checks the Sherman–Morrison update
// agrees bitwise across all four (backend × operand form) combinations.
func TestSolveRankOneSparseBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dense := randSparse(rng, 9, 0.4)
	p, vals := patternOf(t, dense)
	n := 9
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}

	dlu, err := FactorInPlace(dense.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	yd := append([]complex128(nil), b...)
	if err := dlu.SolveInPlace(yd); err != nil {
		t.Fatal(err)
	}
	slu, err := NewSparseScratch(p).Factor(vals)
	if err != nil {
		t.Fatal(err)
	}
	ys := append([]complex128(nil), b...)
	if err := slu.SolveInPlace(ys); err != nil {
		t.Fatal(err)
	}

	denseSolver, err := NewLowRankSolver(dlu, yd)
	if err != nil {
		t.Fatal(err)
	}
	sparseSolver, err := NewLowRankSolverSparse(slu, ys)
	if err != nil {
		t.Fatal(err)
	}

	uIdx, uVal := []int{2, 6}, []complex128{1, -1}
	vIdx, vVal := []int{2, 6}, []complex128{1, -1}
	u := make([]complex128, n)
	v := make([]complex128, n)
	u[2], u[6] = 1, -1
	v[2], v[6] = 1, -1
	s := complex(0.37, 0.11)

	ref := make([]complex128, n)
	if err := denseSolver.SolveRankOne(s, u, v, ref); err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func(x []complex128) error{
		"dense/sparse-ops": func(x []complex128) error {
			return denseSolver.SolveRankOneSparse(s, uIdx, uVal, vIdx, vVal, x)
		},
		"sparse/dense-ops": func(x []complex128) error {
			return sparseSolver.SolveRankOne(s, u, v, x)
		},
		"sparse/sparse-ops": func(x []complex128) error {
			return sparseSolver.SolveRankOneSparse(s, uIdx, uVal, vIdx, vVal, x)
		},
	} {
		x := make([]complex128, n)
		if err := run(x); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range x {
			if !sameBits(x[i], ref[i]) {
				t.Fatalf("%s: x[%d] = %v, reference %v", name, i, x[i], ref[i])
			}
		}
	}
	// Out-of-range sparse operand indices are shape errors.
	x := make([]complex128, n)
	if err := sparseSolver.SolveRankOneSparse(s, []int{n}, []complex128{1}, vIdx, vVal, x); !errors.Is(err, ErrShape) {
		t.Fatalf("u index out of range: err = %v, want ErrShape", err)
	}
}

// FuzzCSR exercises the symbolic layer and the factorization against
// the dense reference on fuzz-chosen patterns and values: the dense↔CSR
// round-trip must be exact, pattern writes must stay in their slots,
// and on diagonally-dominant inputs the sparse LU must agree with the
// dense LU bit-for-bit.
func FuzzCSR(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(128))
	f.Add(int64(99), uint8(9), uint8(40))
	f.Add(int64(-7), uint8(1), uint8(255))
	f.Add(int64(1234567), uint8(13), uint8(10))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, densityRaw uint8) {
		n := 1 + int(nRaw)%14
		density := float64(densityRaw) / 255
		rng := rand.New(rand.NewSource(seed))
		dense := randSparse(rng, n, density)
		p, vals := patternOf(t, dense)

		// Round-trip dense → CSR → dense.
		back := NewMatrix(n, n)
		if err := p.ScatterInto(back, vals); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !sameBits(back.At(i, j), dense.At(i, j)) {
					t.Fatalf("round-trip (%d,%d) = %v, want %v", i, j, back.At(i, j), dense.At(i, j))
				}
			}
		}
		// Slot index is total and in-bounds exactly on the pattern, and
		// CSRValues.Add writes only its own slot.
		cv := CSRValues{P: p, Vals: make([]complex128, p.NNZ())}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				slot := p.SlotOf(i, j)
				if (slot >= 0) != (dense.At(i, j) != 0) {
					t.Fatalf("SlotOf(%d,%d) = %d disagrees with structure", i, j, slot)
				}
				if slot < 0 {
					continue
				}
				before := append([]complex128(nil), cv.Vals...)
				cv.Add(i, j, 1+1i)
				for s := range cv.Vals {
					want := before[s]
					if s == slot {
						want += 1 + 1i
					}
					if cv.Vals[s] != want {
						t.Fatalf("Add(%d,%d) leaked into slot %d", i, j, s)
					}
				}
			}
		}
		// Factorization parity on the (diagonally-dominant) system.
		slu, serr := NewSparseScratch(p).Factor(vals)
		dlu, derr := FactorInPlace(dense.Clone(), nil)
		if (serr == nil) != (derr == nil) {
			t.Fatalf("verdicts diverge: sparse %v, dense %v", serr, derr)
		}
		if serr != nil {
			if serr.Error() != derr.Error() {
				t.Fatalf("error text diverges: sparse %q, dense %q", serr, derr)
			}
			return
		}
		if !sameBits(slu.Det(), dlu.Det()) {
			t.Fatalf("Det = %v, dense %v", slu.Det(), dlu.Det())
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		bd := append([]complex128(nil), b...)
		if err := slu.SolveInPlace(b); err != nil {
			t.Fatal(err)
		}
		if err := dlu.SolveInPlace(bd); err != nil {
			t.Fatal(err)
		}
		for i := range b {
			if !sameBits(b[i], bd[i]) {
				t.Fatalf("x[%d] = %v, dense %v", i, b[i], bd[i])
			}
		}
	})
}

// TestFuzzCSRSmoke keeps the fuzz body exercised in plain `go test`
// runs (the corpus seeds run there, but a few extra deterministic
// combinations cost nothing).
func TestFuzzCSRSmoke(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(seed)%11
		dense := randSparse(rng, n, 0.05+0.1*float64(seed))
		p, vals := patternOf(t, dense)
		slu, err := NewSparseScratch(p).Factor(vals)
		if err != nil {
			if !strings.Contains(err.Error(), "singular") {
				t.Fatalf("seed %d: %v", seed, err)
			}
			continue
		}
		dlu, err := FactorInPlace(dense.Clone(), nil)
		if err != nil {
			t.Fatalf("seed %d: dense disagrees: %v", seed, err)
		}
		if !sameBits(slu.Det(), dlu.Det()) {
			t.Fatalf("seed %d: Det %v vs %v", seed, slu.Det(), dlu.Det())
		}
	}
}
