package numeric

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 3+4i)
	if got := m.At(0, 1); got != 3+4i {
		t.Fatalf("At(0,1) = %v, want 3+4i", got)
	}
	m.Add(0, 1, 1-1i)
	if got := m.At(0, 1); got != 4+3i {
		t.Fatalf("after Add, At(0,1) = %v, want 4+3i", got)
	}
}

func TestIndexPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	cases := []struct{ i, j int }{{-1, 0}, {0, -1}, {2, 0}, {0, 2}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", c.i, c.j)
				}
			}()
			m.At(c.i, c.j)
		}()
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]complex128{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := FromRows([][]complex128{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("ragged rows: err = %v, want ErrShape", err)
	}
}

func TestIdentityMul(t *testing.T) {
	a, _ := FromRows([][]complex128{{1, 2i}, {3, 4}})
	id := Identity(2)
	p, err := a.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equalish(a, 1e-15) {
		t.Fatalf("A·I != A:\n%v\n%v", p, a)
	}
}

func TestMulShapes(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrShape) {
		t.Fatalf("mismatched mul: err = %v, want ErrShape", err)
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]complex128{{1, 2}, {3, 4}})
	b, _ := FromRows([][]complex128{{5, 6}, {7, 8}})
	want, _ := FromRows([][]complex128{{19, 22}, {43, 50}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equalish(want, 1e-12) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]complex128{{1, 2}, {3, 4}})
	y, err := a.MulVec([]complex128{1, 1i})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 1+2i || y[1] != 3+4i {
		t.Fatalf("got %v, want [1+2i 3+4i]", y)
	}
	if _, err := a.MulVec([]complex128{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("short vector: err = %v, want ErrShape", err)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]complex128{{1, 2, 3}, {4, 5, 6}})
	tr := a.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("bad transpose: %v", tr)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
	a, _ := FromRows([][]complex128{{2, 1}, {1, 3}})
	x, err := Solve(a, []complex128{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-1) > 1e-12 || cmplx.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("got %v, want [1 3]", x)
	}
}

func TestSolveComplexSystem(t *testing.T) {
	a, _ := FromRows([][]complex128{{1i, 1}, {1, -1i}})
	// This matrix is singular: row2 = -i * row1.
	if _, err := Solve(a, []complex128{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("singular complex: err = %v, want ErrSingular", err)
	}

	b, _ := FromRows([][]complex128{{1i, 1}, {1, 1i}})
	x, err := Solve(b, []complex128{1 + 1i, 2i})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Residual(b, x, []complex128{1 + 1i, 2i})
	if err != nil {
		t.Fatal(err)
	}
	if r > 1e-12 {
		t.Fatalf("residual %g too large", r)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]complex128{{1, 2}, {2, 4}})
	_, err := Solve(a, []complex128{1, 2})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Factor(a); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestSolveRHSLength(t *testing.T) {
	a := Identity(3)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]complex128{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestDet(t *testing.T) {
	a, _ := FromRows([][]complex128{{4, 3}, {6, 3}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); cmplx.Abs(d-(-6)) > 1e-12 {
		t.Fatalf("det = %v, want -6", d)
	}
	id := Identity(5)
	fid, _ := Factor(id)
	if d := fid.Det(); cmplx.Abs(d-1) > 1e-12 {
		t.Fatalf("det(I) = %v, want 1", d)
	}
}

func TestDetPermutationParity(t *testing.T) {
	// A matrix that forces a row swap: det must keep the right sign.
	a, _ := FromRows([][]complex128{{0, 1}, {1, 0}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); cmplx.Abs(d-(-1)) > 1e-12 {
		t.Fatalf("det = %v, want -1", d)
	}
}

func TestInverse(t *testing.T) {
	a, _ := FromRows([][]complex128{{2, 1}, {1, 3}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := a.Mul(inv)
	if !p.Equalish(Identity(2), 1e-12) {
		t.Fatalf("A·A⁻¹ != I: %v", p)
	}
}

func TestConditionEstimate(t *testing.T) {
	k, err := ConditionEstimate(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-1) > 1e-12 {
		t.Fatalf("κ(I) = %g, want 1", k)
	}
	// Nearly-singular matrix must report a large condition number.
	a, _ := FromRows([][]complex128{{1, 1}, {1, 1 + 1e-9}})
	k, err = ConditionEstimate(a)
	if err != nil {
		t.Fatal(err)
	}
	if k < 1e6 {
		t.Fatalf("κ = %g, want large", k)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Identity(2)
	b := a.Clone()
	b.Set(0, 0, 7)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestZero(t *testing.T) {
	a := Identity(3)
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Fatal("Zero did not clear the matrix")
	}
}

func TestNorms(t *testing.T) {
	a, _ := FromRows([][]complex128{{3i, 4}, {-1, 0}})
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %g, want 4", got)
	}
	if got := a.NormInf(); got != 7 {
		t.Fatalf("NormInf = %g, want 7", got)
	}
}

// randomWellConditioned builds a diagonally dominant random matrix, which is
// guaranteed nonsingular.
func randomWellConditioned(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := complex(rng.Float64()*2-1, rng.Float64()*2-1)
			m.Set(i, j, v)
			rowSum += cmplx.Abs(v)
		}
		m.Set(i, i, complex(rowSum+1, rng.Float64()))
	}
	return m
}

// Property: for random diagonally dominant systems, Solve produces a small
// residual.
func TestSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%8) + 1
		r := rand.New(rand.NewSource(seed))
		a := randomWellConditioned(r, n)
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(r.Float64()*2-1, r.Float64()*2-1)
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		res, err := Residual(a, x, b)
		if err != nil {
			return false
		}
		return res < 1e-9
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: det(A·B) == det(A)·det(B) for random matrices.
func TestDetMultiplicativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(seed%4+4) % 4
		if n < 2 {
			n = 2
		}
		a := randomWellConditioned(r, n)
		b := randomWellConditioned(r, n)
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		fa, err1 := Factor(a)
		fb, err2 := Factor(b)
		fab, err3 := Factor(ab)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		lhs, rhs := fab.Det(), fa.Det()*fb.Det()
		return cmplx.Abs(lhs-rhs) <= 1e-8*(1+cmplx.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: (Aᵀ)ᵀ == A.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := int(seed%5)+1, int(seed%3)+1
		if rows < 1 {
			rows = 1
		}
		if cols < 1 {
			cols = 1
		}
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = complex(r.Float64(), r.Float64())
		}
		return m.Transpose().Transpose().Equalish(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorDoesNotModifyInput(t *testing.T) {
	a, _ := FromRows([][]complex128{{2, 1}, {1, 3}})
	orig := a.Clone()
	if _, err := Factor(a); err != nil {
		t.Fatal(err)
	}
	if !a.Equalish(orig, 0) {
		t.Fatal("Factor modified its input")
	}
}

func TestResidualShapes(t *testing.T) {
	a := Identity(2)
	if _, err := Residual(a, []complex128{1, 2}, []complex128{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestFactorInPlaceMatchesFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		a := randomWellConditioned(rng, n)
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.Float64(), rng.Float64())
		}
		want, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		work := a.Clone()
		lu, err := FactorInPlace(work, make([]int, n))
		if err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), b...)
		if err := lu.SolveInPlace(got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-10 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
		if len(lu.Pivot()) != n {
			t.Fatal("pivot buffer length")
		}
	}
}

func TestFactorInPlaceErrors(t *testing.T) {
	if _, err := FactorInPlace(NewMatrix(2, 3), nil); !errors.Is(err, ErrShape) {
		t.Error("non-square accepted")
	}
	sing, _ := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := FactorInPlace(sing, nil); !errors.Is(err, ErrSingular) {
		t.Error("singular accepted")
	}
	ok, _ := FromRows([][]complex128{{2, 1}, {1, 3}})
	lu, err := FactorInPlace(ok, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := lu.SolveInPlace([]complex128{1}); !errors.Is(err, ErrShape) {
		t.Error("short rhs accepted")
	}
}
