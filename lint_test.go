package analogdft

import "testing"

func TestLintPaperBiquadClean(t *testing.T) {
	rep := Lint(PaperBiquad())
	if !rep.Clean() {
		t.Fatalf("paper biquad not clean: %+v", rep.Diagnostics)
	}
}

func TestLintDeckBenchCarriesLines(t *testing.T) {
	bench, err := LoadBench("testdata/biquad.cir")
	if err != nil {
		t.Fatal(err)
	}
	if bench.Deck == nil {
		t.Fatal("LoadBench dropped the parsed deck")
	}
	if rep := Lint(bench); !rep.Clean() {
		t.Fatalf("biquad deck not clean: %+v", rep.Diagnostics)
	}
}

func TestLintCircuitFindsFloatingNode(t *testing.T) {
	c := NewCircuit("bad")
	c.R("R1", "in", "a", 1e3)
	c.R("R2", "a", "0", 1e3)
	c.R("R3", "a", "x", 1e3)
	c.Input, c.Output = "in", "a"
	rep := LintCircuit(c, nil)
	if rep.Count(LintError) == 0 {
		t.Fatalf("no errors reported: %+v", rep.Diagnostics)
	}
	if rep.Diagnostics[0].Code != "NL002" {
		t.Errorf("first code = %s, want NL002", rep.Diagnostics[0].Code)
	}
}

func TestLintChecksRegistry(t *testing.T) {
	if n := len(LintChecks()); n != 14 {
		t.Errorf("LintChecks() has %d entries, want 14", n)
	}
}
