package main

import (
	"math"
	"net/http"
	"runtime/debug"
	"sync/atomic"

	"analogdft/internal/obs"
)

// SLO instrumentation: a rolling latency summary over every endpoint
// (exact P50/P95/P99 over the last sloWindow requests — no dependency,
// no streaming sketch) and an error-budget gauge derived from the 5xx
// fraction against the configured availability target. Both live in the
// shared registry, so /metrics carries them next to the raw histograms.
const sloWindow = 1024

var (
	hRequest = obs.Reg().Summary("dftserved_http_request_seconds",
		"rolling request latency across all endpoints", sloWindow)

	sloRequests atomic.Int64
	sloFailures atomic.Int64

	// sloTargetBits holds the availability target (a float64, stored as
	// bits for atomic access); -slo-target overrides the default.
	sloTargetBits atomic.Uint64

	_ = obs.Reg().GaugeFunc("dftserved_slo_error_budget_remaining",
		"fraction of the availability error budget left (1 = untouched, <0 = blown)",
		errorBudgetRemaining)
)

// defaultSLOTarget is the availability objective when -slo-target is not
// given: at most 1 request in 100 may fail with a 5xx.
const defaultSLOTarget = 0.99

func init() { setSLOTarget(defaultSLOTarget) }

// setSLOTarget installs the availability objective (0 < target < 1).
func setSLOTarget(target float64) { sloTargetBits.Store(math.Float64bits(target)) }

// sloTarget returns the configured availability objective.
func sloTarget() float64 { return math.Float64frombits(sloTargetBits.Load()) }

// errorBudgetRemaining computes the unspent fraction of the error budget:
// with target availability T the budget is a 1-T failure fraction, and
// each 5xx spends budget/total of it. 1 with no traffic or no failures,
// 0 at the objective boundary, negative once the objective is blown.
func errorBudgetRemaining() float64 {
	total := sloRequests.Load()
	if total == 0 {
		return 1
	}
	failed := float64(sloFailures.Load()) / float64(total)
	budget := 1 - sloTarget()
	if budget <= 0 {
		if failed == 0 {
			return 1
		}
		return 0
	}
	return 1 - failed/budget
}

// buildGoVersion and buildRevision are captured once from the binary's
// embedded build info for the /healthz snapshot.
var buildGoVersion, buildRevision = readBuildInfo()

func readBuildInfo() (goVersion, revision string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown", ""
	}
	goVersion = bi.GoVersion
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return goVersion, revision
}

// trace handles GET /v1/jobs/{id}/trace: the retained span tree of a
// finished job, or the live tree of one still queued or running. Evicted
// traces answer 410 Gone, unknown jobs 404.
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	jt, err := s.mgr.Trace(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jt)
}

// traces handles GET /v1/debug/traces: the retention ring's summaries,
// newest first, without the span trees.
func (s *server) traces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.TraceSummaries())
}

// sloBody is the GET /v1/debug/slo response. Latency quantiles are nil
// until the first request lands in the rolling window.
type sloBody struct {
	Target               float64  `json:"target"`
	Requests             int64    `json:"requests"`
	Failures             int64    `json:"failures"`
	ErrorBudgetRemaining float64  `json:"error_budget_remaining"`
	Window               int      `json:"window"`
	LatencyP50           *float64 `json:"latency_p50_seconds,omitempty"`
	LatencyP95           *float64 `json:"latency_p95_seconds,omitempty"`
	LatencyP99           *float64 `json:"latency_p99_seconds,omitempty"`
}

// slo handles GET /v1/debug/slo: the same numbers /metrics exposes, in
// one JSON object for humans and scripts.
func (s *server) slo(w http.ResponseWriter, r *http.Request) {
	body := sloBody{
		Target:               sloTarget(),
		Requests:             sloRequests.Load(),
		Failures:             sloFailures.Load(),
		ErrorBudgetRemaining: errorBudgetRemaining(),
		Window:               sloWindow,
	}
	quantile := func(q float64) *float64 {
		v := hRequest.Quantile(q)
		if math.IsNaN(v) {
			return nil
		}
		return &v
	}
	body.LatencyP50, body.LatencyP95, body.LatencyP99 = quantile(0.5), quantile(0.95), quantile(0.99)
	writeJSON(w, http.StatusOK, body)
}
