package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"analogdft/internal/jobs"
	"analogdft/internal/obs"
)

// clientTraceparent is a fixed W3C trace-context header: trace ID
// 4bf92f3577b34da6a3ce929d0e0e4736, caller span 00f067aa0ba902b7, sampled.
const clientTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

// withTiming enables latency collection (and with it the schedule-level
// spans: per-chunk cell solves, enqueue waits) for one test.
func withTiming(t *testing.T) {
	t.Helper()
	prev := obs.TimingOn()
	obs.Default().SetTiming(true)
	t.Cleanup(func() { obs.Default().SetTiming(prev) })
}

// findNode returns the first node named name in a depth-first walk.
func findNode(node *obs.SpanNode, name string) *obs.SpanNode {
	if node == nil {
		return nil
	}
	if node.Name == name {
		return node
	}
	for _, c := range node.Children {
		if n := findNode(c, name); n != nil {
			return n
		}
	}
	return nil
}

// TestServerTraceEndToEnd is the acceptance e2e of the tracing layer: a
// matrix job submitted under a client traceparent yields, on
// GET /v1/jobs/{id}/trace, a span tree covering enqueue wait → cache
// lookup → worker pickup → nominal sweep → cell-solve chunks, all under
// the client's trace ID.
func TestServerTraceEndToEnd(t *testing.T) {
	withTiming(t)
	ts, _ := startServer(t, jobs.Config{Workers: 1})

	raw, err := json.Marshal(smallMatrixJob())
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", clientTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get("traceparent"); got != clientTraceparent {
		t.Errorf("response traceparent = %q, want the inbound identity echoed", got)
	}
	var v jobs.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("job view trace id = %q, inbound ID not propagated", v.TraceID)
	}
	done := pollTerminal(t, ts.URL, v.ID, 30*time.Second)
	if done.State != jobs.StateDone {
		t.Fatalf("job state = %s (err %q)", done.State, done.Err)
	}

	var jt jobs.JobTrace
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"/trace", nil, &jt); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: HTTP %d", resp.StatusCode)
	}
	if jt.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || jt.Parent != "00f067aa0ba902b7" {
		t.Fatalf("trace identity = %s parent %s, inbound header not carried end to end", jt.TraceID, jt.Parent)
	}
	if jt.Trace == nil || len(jt.Trace.Spans) != 1 {
		t.Fatalf("trace tree = %+v", jt.Trace)
	}
	root := jt.Trace.Spans[0]
	if root.Name != "job" || root.Tags["trace_id"] != jt.TraceID {
		t.Fatalf("root span = %+v", root)
	}
	// The full request-to-solve path: queue wait and cache lookup at the
	// job layer, worker pickup (jobs.run), the engine's nominal pre-sweep
	// and the chunked cell solves underneath it.
	for _, name := range []string{"jobs.enqueue_wait", "jobs.cache_lookup", "jobs.run", "detect.nominals", "detect.cells", "detect.chunk"} {
		if findNode(root, name) == nil {
			t.Errorf("span %q missing from the job trace", name)
		}
	}
	if run := findNode(root, "jobs.run"); run != nil && findNode(run, "detect.chunk") == nil {
		t.Error("cell-solve chunks not nested under the worker's run span")
	}

	// The debug listing knows the job, newest first, without span trees.
	var sums []jobs.JobTrace
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/debug/traces", nil, &sums); resp.StatusCode != http.StatusOK {
		t.Fatalf("debug traces: HTTP %d", resp.StatusCode)
	}
	found := false
	for _, s := range sums {
		if s.JobID == v.ID {
			found = true
			if s.Trace != nil {
				t.Error("trace summary carries a span tree")
			}
		}
	}
	if !found {
		t.Errorf("job %s missing from /v1/debug/traces", v.ID)
	}
}

// TestServerTraceErrors covers the 404/410 mappings of the trace endpoint.
func TestServerTraceErrors(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1, TraceEntries: 1})
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-999/trace", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: HTTP %d, want 404", resp.StatusCode)
	}
	var ids []string
	for i := 0; i < 2; i++ {
		job := smallMatrixJob()
		job["options"] = map[string]any{"points": 11 + i}
		var v jobs.View
		if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", job, &v); resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		pollTerminal(t, ts.URL, v.ID, 30*time.Second)
		ids = append(ids, v.ID)
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+ids[0]+"/trace", nil, nil); resp.StatusCode != http.StatusGone {
		t.Errorf("evicted trace: HTTP %d, want 410", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+ids[1]+"/trace", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("retained trace: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestServerQueueFullBody: the 429 body names the queue occupancy so
// clients can back off proportionally.
func TestServerQueueFullBody(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1, QueueDepth: 1})
	big := func(points int) map[string]any {
		return map[string]any{
			"kind":    "matrix",
			"bench":   "paper-biquad",
			"options": map[string]any{"points": points},
		}
	}
	var ids []string
	for i := 0; i < 2; i++ {
		var v jobs.View
		if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", big(20001+i), &v); resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	var eb apiError
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", big(20003), &eb); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: HTTP %d, want 429", resp.StatusCode)
	}
	if eb.QueueDepth == nil || *eb.QueueDepth != 1 {
		t.Errorf("429 queue_depth = %v, want 1", eb.QueueDepth)
	}
	if eb.QueueCapacity == nil || *eb.QueueCapacity != 1 {
		t.Errorf("429 queue_capacity = %v, want 1", eb.QueueCapacity)
	}
	for _, id := range ids {
		doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil, &jobs.View{})
	}
	for _, id := range ids {
		pollTerminal(t, ts.URL, id, 30*time.Second)
	}
}

// TestServerHealthzSnapshot: the liveness endpoint answers 200 with the
// structured build/queue/cache snapshot.
func TestServerHealthzSnapshot(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 3})
	var h healthBody
	if resp := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	if !h.OK || h.Workers != 3 || h.GoVersion == "" {
		t.Errorf("healthz body = %+v", h)
	}
	if h.QueueCapacity == 0 {
		t.Error("healthz missing queue capacity")
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %g", h.UptimeSeconds)
	}
}

// TestServerSLOEndpoint: after a handful of requests the SLO snapshot has
// traffic, latency quantiles and an intact error budget; /metrics carries
// the matching summary series.
func TestServerSLOEndpoint(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1})
	for i := 0; i < 5; i++ {
		doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil)
	}
	var body sloBody
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/debug/slo", nil, &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("slo: HTTP %d", resp.StatusCode)
	}
	if body.Requests < 5 || body.Target <= 0 || body.Target >= 1 {
		t.Errorf("slo body = %+v", body)
	}
	if body.LatencyP50 == nil || body.LatencyP99 == nil {
		t.Errorf("slo quantiles missing: %+v", body)
	}
	if body.ErrorBudgetRemaining > 1 {
		t.Errorf("error budget remaining = %g > 1", body.ErrorBudgetRemaining)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, series := range []string{
		`dftserved_http_request_seconds{quantile="0.5"}`,
		`dftserved_http_request_seconds{quantile="0.99"}`,
		"dftserved_slo_error_budget_remaining",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(series)) {
			t.Errorf("metrics exposition missing %s:\n%.2000s", series, text)
		}
	}
}
