package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"analogdft/internal/jobs"
	"analogdft/internal/obs"
)

// HTTP-layer instrumentation: one latency histogram per endpoint (the
// registry's histogram names cannot carry labels, so each endpoint gets
// its own series) plus a response counter by status class.
var (
	hSubmit = obs.Reg().Histogram("dftserved_http_submit_seconds",
		"POST /v1/jobs latency", obs.TimeBuckets)
	hStatus = obs.Reg().Histogram("dftserved_http_status_seconds",
		"GET /v1/jobs and /v1/jobs/{id} latency", obs.TimeBuckets)
	hResult = obs.Reg().Histogram("dftserved_http_result_seconds",
		"GET /v1/jobs/{id}/result latency", obs.TimeBuckets)
	hCancel = obs.Reg().Histogram("dftserved_http_cancel_seconds",
		"DELETE /v1/jobs/{id} latency", obs.TimeBuckets)
	hOther = obs.Reg().Histogram("dftserved_http_other_seconds",
		"latency of the remaining endpoints (benches, metrics, health)", obs.TimeBuckets)
	cResponses = obs.Reg().CounterVec("dftserved_http_responses_total",
		"responses by status class", "class")
)

// srvlog is the server logger.
var srvlog = obs.Logger("dftserved")

// server is the HTTP front of a jobs.Manager.
type server struct {
	mgr     *jobs.Manager
	started time.Time
}

// newServer builds the full handler: the /v1 job API, the trace and SLO
// debug endpoints, /metrics, /healthz and /debug/pprof, each wrapped in a
// request-scoped span and a latency histogram.
func newServer(mgr *jobs.Manager) http.Handler {
	s := &server{mgr: mgr, started: obs.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", instrument("submit", hSubmit, s.submit))
	mux.HandleFunc("GET /v1/jobs", instrument("list", hStatus, s.list))
	mux.HandleFunc("GET /v1/jobs/{id}", instrument("status", hStatus, s.status))
	mux.HandleFunc("GET /v1/jobs/{id}/result", instrument("result", hResult, s.result))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", instrument("trace", hOther, s.trace))
	mux.HandleFunc("DELETE /v1/jobs/{id}", instrument("cancel", hCancel, s.cancel))
	mux.HandleFunc("GET /v1/benches", instrument("benches", hOther, s.benches))
	mux.HandleFunc("GET /v1/debug/traces", instrument("traces", hOther, s.traces))
	mux.HandleFunc("GET /v1/debug/slo", instrument("slo", hOther, s.slo))
	mux.HandleFunc("GET /metrics", instrument("metrics", hOther, s.metrics))
	mux.HandleFunc("GET /healthz", instrument("healthz", hOther, s.healthz))
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler in the edge middleware: W3C trace-context
// adoption (an inbound `traceparent` header is parsed and carried through
// the request context into the job's trace; a missing or malformed header
// mints a fresh identity, echoed back so clients learn their trace ID), a
// span named after the endpoint, the per-endpoint latency histogram, the
// rolling all-endpoint latency summary, and the SLO failure accounting.
func instrument(name string, h *obs.Histogram, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := obs.Now()
		tc, err := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if err != nil {
			tc = obs.NewTraceContext()
		}
		w.Header().Set("traceparent", tc.String())
		ctx := obs.ContextWithTrace(r.Context(), tc)
		ctx, span := obs.Start(ctx, "http."+name)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r.WithContext(ctx))
		span.SetTag("status", fmt.Sprint(sw.code))
		span.End()
		el := obs.Since(start).Seconds()
		h.Observe(el)
		hRequest.Observe(el)
		sloRequests.Add(1)
		if sw.code >= 500 {
			sloFailures.Add(1)
		}
		cResponses.With(fmt.Sprintf("%dxx", sw.code/100)).Inc()
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		srvlog.Warn("write response", "err", err)
	}
}

// errorBody is the JSON shape of every error response. On 429 the queue
// occupancy rides along so clients can back off proportionally instead of
// blindly honoring Retry-After.
type errorBody struct {
	Error         string `json:"error"`
	QueueDepth    *int   `json:"queue_depth,omitempty"`
	QueueCapacity *int   `json:"queue_capacity,omitempty"`
}

// writeError maps manager errors onto status codes: bad requests → 400,
// a full queue → 429 with Retry-After and the queue occupancy, unknown
// jobs → 404, finished jobs → 409, evicted traces → 410, a draining
// manager → 503.
func (s *server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	body := errorBody{Error: err.Error()}
	switch {
	case errors.Is(err, jobs.ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
		depth, capacity := s.mgr.QueueStats()
		body.QueueDepth, body.QueueCapacity = &depth, &capacity
	case errors.Is(err, jobs.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, jobs.ErrFinished):
		code = http.StatusConflict
	case errors.Is(err, jobs.ErrTraceEvicted):
		code = http.StatusGone
	case errors.Is(err, jobs.ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// submit handles POST /v1/jobs.
func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var req jobs.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decode request: %v", err)})
		return
	}
	v, err := s.mgr.SubmitCtx(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+v.ID)
	writeJSON(w, http.StatusCreated, v)
}

// list handles GET /v1/jobs.
func (s *server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List())
}

// status handles GET /v1/jobs/{id}.
func (s *server) status(w http.ResponseWriter, r *http.Request) {
	v, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// result handles GET /v1/jobs/{id}/result: 200 with the payload once the
// job is done, 202 with the job view while it is queued or running, 409
// when it finished without a result (failed or cancelled).
func (s *server) result(w http.ResponseWriter, r *http.Request) {
	payload, v, err := s.mgr.Result(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	switch {
	case v.State == jobs.StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(payload); err != nil {
			srvlog.Warn("write result", "job", v.ID, "err", err)
		}
	case v.State.Terminal():
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job %s %s: %s", v.ID, v.State, v.Err)})
	default:
		writeJSON(w, http.StatusAccepted, v)
	}
}

// cancel handles DELETE /v1/jobs/{id}.
func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	v, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

// benches handles GET /v1/benches.
func (s *server) benches(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, jobs.BenchNames())
}

// metrics handles GET /metrics in the Prometheus text format, followed by
// the slow-solve exemplar comments that link latency outliers to traces.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := obs.Reg().WritePrometheus(w); err != nil {
		srvlog.Warn("write metrics", "err", err)
		return
	}
	if err := obs.WriteExemplarComments(w); err != nil {
		srvlog.Warn("write exemplars", "err", err)
	}
}

// healthBody is the structured /healthz snapshot.
type healthBody struct {
	OK            bool    `json:"ok"`
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"revision,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	CacheEntries  int     `json:"cache_entries"`
}

// healthz handles GET /healthz. It stays a plain-200 liveness probe — the
// snapshot is assembled from in-memory counters, nothing here can block
// or fail, and the status code never degrades.
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.mgr.QueueStats()
	writeJSON(w, http.StatusOK, healthBody{
		OK:            true,
		GoVersion:     buildGoVersion,
		Revision:      buildRevision,
		UptimeSeconds: obs.Since(s.started).Seconds(),
		Workers:       s.mgr.Config().Workers,
		QueueDepth:    depth,
		QueueCapacity: capacity,
		CacheEntries:  s.mgr.CacheLen(),
	})
}
