package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"analogdft/internal/jobs"
	"analogdft/internal/obs"
)

// HTTP-layer instrumentation: one latency histogram per endpoint (the
// registry's histogram names cannot carry labels, so each endpoint gets
// its own series) plus a response counter by status class.
var (
	hSubmit = obs.Reg().Histogram("dftserved_http_submit_seconds",
		"POST /v1/jobs latency", obs.TimeBuckets)
	hStatus = obs.Reg().Histogram("dftserved_http_status_seconds",
		"GET /v1/jobs and /v1/jobs/{id} latency", obs.TimeBuckets)
	hResult = obs.Reg().Histogram("dftserved_http_result_seconds",
		"GET /v1/jobs/{id}/result latency", obs.TimeBuckets)
	hCancel = obs.Reg().Histogram("dftserved_http_cancel_seconds",
		"DELETE /v1/jobs/{id} latency", obs.TimeBuckets)
	hOther = obs.Reg().Histogram("dftserved_http_other_seconds",
		"latency of the remaining endpoints (benches, metrics, health)", obs.TimeBuckets)
	cResponses = obs.Reg().CounterVec("dftserved_http_responses_total",
		"responses by status class", "class")
)

// srvlog is the server logger.
var srvlog = obs.Logger("dftserved")

// server is the HTTP front of a jobs.Manager.
type server struct {
	mgr     *jobs.Manager
	started time.Time
}

// newServer builds the full handler: the /v1 job API, the trace and SLO
// debug endpoints, /metrics, /healthz and /debug/pprof, each wrapped in a
// request-scoped span and a latency histogram.
func newServer(mgr *jobs.Manager) http.Handler {
	s := &server{mgr: mgr, started: obs.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", instrument("submit", hSubmit, s.submit))
	mux.HandleFunc("GET /v1/jobs", instrument("list", hStatus, s.list))
	mux.HandleFunc("GET /v1/jobs/{id}", instrument("status", hStatus, s.status))
	mux.HandleFunc("GET /v1/jobs/{id}/result", instrument("result", hResult, s.result))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", instrument("trace", hOther, s.trace))
	mux.HandleFunc("DELETE /v1/jobs/{id}", instrument("cancel", hCancel, s.cancel))
	mux.HandleFunc("GET /v1/benches", instrument("benches", hOther, s.benches))
	mux.HandleFunc("GET /v1/debug/traces", instrument("traces", hOther, s.traces))
	mux.HandleFunc("GET /v1/debug/slo", instrument("slo", hOther, s.slo))
	mux.HandleFunc("GET /metrics", instrument("metrics", hOther, s.metrics))
	mux.HandleFunc("GET /healthz", instrument("healthz", hOther, s.healthz))
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the wrapped writer's Flush,
// which the row stream needs.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler in the edge middleware: W3C trace-context
// adoption (an inbound `traceparent` header is parsed and carried through
// the request context into the job's trace; a missing or malformed header
// mints a fresh identity, echoed back so clients learn their trace ID), a
// span named after the endpoint, the per-endpoint latency histogram, the
// rolling all-endpoint latency summary, and the SLO failure accounting.
func instrument(name string, h *obs.Histogram, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := obs.Now()
		tc, err := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if err != nil {
			tc = obs.NewTraceContext()
		}
		w.Header().Set("traceparent", tc.String())
		ctx := obs.ContextWithTrace(r.Context(), tc)
		ctx, span := obs.Start(ctx, "http."+name)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r.WithContext(ctx))
		span.SetTag("status", fmt.Sprint(sw.code))
		span.End()
		el := obs.Since(start).Seconds()
		h.Observe(el)
		hRequest.Observe(el)
		sloRequests.Add(1)
		if sw.code >= 500 {
			sloFailures.Add(1)
		}
		cResponses.With(fmt.Sprintf("%dxx", sw.code/100)).Inc()
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		srvlog.Warn("write response", "err", err)
	}
}

// apiError is the one JSON shape of every error response, documented in
// DESIGN.md §16: a stable machine-readable code, the human message, and —
// where retrying can help — a retry hint. On 429 the queue occupancy
// rides along so clients can back off proportionally instead of blindly
// honoring Retry-After.
type apiError struct {
	Code          string `json:"code"`
	Message       string `json:"message"`
	RetryAfter    int    `json:"retry_after,omitempty"`
	QueueDepth    *int   `json:"queue_depth,omitempty"`
	QueueCapacity *int   `json:"queue_capacity,omitempty"`
}

// errorFor maps a manager error onto its HTTP status and apiError code:
// bad requests → 400 bad_request, a full queue → 429 queue_full, unknown
// jobs → 404 not_found, finished jobs → 409 finished, evicted traces →
// 410 trace_evicted, a draining manager → 503 draining, everything else
// → 500 internal.
func errorFor(err error) (int, apiError) {
	body := apiError{Code: "internal", Message: err.Error()}
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, jobs.ErrBadRequest):
		code, body.Code = http.StatusBadRequest, "bad_request"
	case errors.Is(err, jobs.ErrQueueFull):
		code, body.Code = http.StatusTooManyRequests, "queue_full"
		body.RetryAfter = 1
	case errors.Is(err, jobs.ErrNotFound):
		code, body.Code = http.StatusNotFound, "not_found"
	case errors.Is(err, jobs.ErrFinished):
		code, body.Code = http.StatusConflict, "finished"
	case errors.Is(err, jobs.ErrTraceEvicted):
		code, body.Code = http.StatusGone, "trace_evicted"
	case errors.Is(err, jobs.ErrClosed):
		code, body.Code = http.StatusServiceUnavailable, "draining"
		body.RetryAfter = 1
	}
	return code, body
}

// writeError renders a manager error as its apiError shape.
func (s *server) writeError(w http.ResponseWriter, err error) {
	code, body := errorFor(err)
	if body.Code == "queue_full" {
		w.Header().Set("Retry-After", "1")
		depth, capacity := s.mgr.QueueStats()
		body.QueueDepth, body.QueueCapacity = &depth, &capacity
	}
	writeJSON(w, code, body)
}

// withLinks fills a job view's navigation links, so clients follow URLs
// instead of assembling paths.
func withLinks(v jobs.View) jobs.View {
	base := "/v1/jobs/" + v.ID
	v.Links = &jobs.Links{
		Result: base + "/result",
		Trace:  base + "/trace",
		Stream: base + "/result?stream=rows",
	}
	return v
}

// submit handles POST /v1/jobs.
func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var req jobs.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Code: "bad_request", Message: fmt.Sprintf("decode request: %v", err)})
		return
	}
	v, err := s.mgr.SubmitCtx(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+v.ID)
	writeJSON(w, http.StatusCreated, withLinks(v))
}

// list handles GET /v1/jobs.
func (s *server) list(w http.ResponseWriter, r *http.Request) {
	views := s.mgr.List()
	for i := range views {
		views[i] = withLinks(views[i])
	}
	writeJSON(w, http.StatusOK, views)
}

// status handles GET /v1/jobs/{id}.
func (s *server) status(w http.ResponseWriter, r *http.Request) {
	v, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, withLinks(v))
}

// result handles GET /v1/jobs/{id}/result: 200 with the payload once the
// job is done, 202 with the job view while it is queued or running, 409
// when it finished without a result (failed or cancelled). With
// ?stream=rows the response is instead a chunked NDJSON stream of matrix
// rows as they complete (see streamRows).
func (s *server) result(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("stream") == "rows" {
		s.streamRows(w, r)
		return
	}
	payload, v, err := s.mgr.Result(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	switch {
	case v.State == jobs.StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(payload); err != nil {
			srvlog.Warn("write result", "job", v.ID, "err", err)
		}
	case v.State.Terminal():
		writeJSON(w, http.StatusConflict, apiError{Code: "finished", Message: fmt.Sprintf("job %s %s: %s", v.ID, v.State, v.Err)})
	default:
		writeJSON(w, http.StatusAccepted, withLinks(v))
	}
}

// streamEvent is one NDJSON line of the row stream: a matrix row, the
// final aggregate payload, or a terminal error — exactly one field set,
// discriminated by Type.
type streamEvent struct {
	Type   string          `json:"type"`
	Row    *jobs.RowEvent  `json:"row,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *apiError       `json:"error,omitempty"`
}

// streamRows handles GET /v1/jobs/{id}/result?stream=rows: a chunked
// application/x-ndjson stream that emits one {"type":"row"} line per
// completed matrix row as shards finish, then a final {"type":"result"}
// line whose payload is byte-identical to the non-streaming result (or
// {"type":"error"} when the job failed or was cancelled). Jobs that are
// already terminal when the stream opens — cache hits in particular —
// have an empty closed feed, so their rows are synthesized from the
// stored payload: the protocol is the same either way.
func (s *server) streamRows(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	feed, _, err := s.mgr.Stream(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	fl := http.NewResponseController(w)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(ev streamEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false // client went away
		}
		return fl.Flush() == nil
	}
	sent := 0
	for {
		rows, done, wake := feed.Snapshot(sent)
		for i := range rows {
			if !emit(streamEvent{Type: "row", Row: &rows[i]}) {
				return
			}
		}
		sent += len(rows)
		if done {
			break
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
	payload, v, err := s.mgr.Result(id)
	if err != nil {
		_, body := errorFor(err)
		emit(streamEvent{Type: "error", Error: &body})
		return
	}
	if v.State != jobs.StateDone {
		emit(streamEvent{Type: "error", Error: &apiError{Code: "finished", Message: fmt.Sprintf("job %s %s: %s", v.ID, v.State, v.Err)}})
		return
	}
	if sent == 0 && v.Kind == jobs.KindMatrix {
		var mx jobs.MatrixResult
		if err := json.Unmarshal(payload, &mx); err == nil {
			for i := range mx.Configs {
				row := jobs.RowEvent{Index: i, Config: mx.Configs[i], Det: mx.Det[i], Omega: mx.Omega[i]}
				if !emit(streamEvent{Type: "row", Row: &row}) {
					return
				}
			}
		}
	}
	emit(streamEvent{Type: "result", Result: payload})
}

// cancel handles DELETE /v1/jobs/{id}.
func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	v, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, withLinks(v))
}

// benches handles GET /v1/benches.
func (s *server) benches(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, jobs.BenchNames())
}

// metrics handles GET /metrics in the Prometheus text format, followed by
// the slow-solve exemplar comments that link latency outliers to traces.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := obs.Reg().WritePrometheus(w); err != nil {
		srvlog.Warn("write metrics", "err", err)
		return
	}
	if err := obs.WriteExemplarComments(w); err != nil {
		srvlog.Warn("write exemplars", "err", err)
	}
}

// healthBody is the structured /healthz snapshot.
type healthBody struct {
	OK            bool            `json:"ok"`
	GoVersion     string          `json:"go_version"`
	Revision      string          `json:"revision,omitempty"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Workers       int             `json:"workers"`
	Shards        int             `json:"shards"`
	QueueDepth    int             `json:"queue_depth"`
	QueueCapacity int             `json:"queue_capacity"`
	CacheEntries  int             `json:"cache_entries"`
	Store         jobs.StoreStats `json:"store"`
}

// healthz handles GET /healthz. It stays a plain-200 liveness probe — the
// snapshot is assembled from in-memory counters, nothing here can block
// or fail, and the status code never degrades.
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.mgr.QueueStats()
	store := s.mgr.StoreStats()
	writeJSON(w, http.StatusOK, healthBody{
		OK:            true,
		GoVersion:     buildGoVersion,
		Revision:      buildRevision,
		UptimeSeconds: obs.Since(s.started).Seconds(),
		Workers:       s.mgr.Config().Workers,
		Shards:        s.mgr.Config().Shards,
		QueueDepth:    depth,
		QueueCapacity: capacity,
		CacheEntries:  store.Entries,
		Store:         store,
	})
}
