package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"analogdft/internal/jobs"
	"analogdft/internal/obs"
)

// TestServerJobLinks pins the navigation contract: every single-job view
// carries a stable links object pointing at the job's resources.
func TestServerJobLinks(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1})
	var v jobs.View
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallMatrixJob(), &v); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	check := func(where string, v jobs.View) {
		t.Helper()
		base := "/v1/jobs/" + v.ID
		if v.Links == nil {
			t.Fatalf("%s: view has no links", where)
		}
		if v.Links.Result != base+"/result" || v.Links.Trace != base+"/trace" || v.Links.Stream != base+"/result?stream=rows" {
			t.Errorf("%s: links = %+v", where, v.Links)
		}
	}
	check("submit", v)
	var sv jobs.View
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID, nil, &sv); resp.StatusCode != http.StatusOK {
		t.Fatalf("status: HTTP %d", resp.StatusCode)
	}
	check("status", sv)
	pollTerminal(t, ts.URL, v.ID, 30*time.Second)

	// The links resolve: the result URL serves the payload.
	var result jobs.MatrixResult
	if resp := doJSON(t, http.MethodGet, ts.URL+sv.Links.Result, nil, &result); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET links.result: HTTP %d", resp.StatusCode)
	}
	if len(result.Configs) == 0 {
		t.Error("links.result served a degenerate payload")
	}
}

// readStream consumes an NDJSON row stream to completion and returns the
// row events and the raw final result line (nil if the stream ended with
// an error event, which is returned third).
func readStream(t *testing.T, url string) ([]jobs.RowEvent, json.RawMessage, *apiError) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var rows []jobs.RowEvent
	var result json.RawMessage
	var streamErr *apiError
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "row":
			if result != nil || streamErr != nil {
				t.Fatal("row event after the terminal event")
			}
			rows = append(rows, *ev.Row)
		case "result":
			result = ev.Result
		case "error":
			streamErr = ev.Error
		default:
			t.Fatalf("unknown stream event type %q", ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if result == nil && streamErr == nil {
		t.Fatal("stream ended without a terminal event")
	}
	return rows, result, streamErr
}

// TestServerStreamRows is the streaming acceptance test: the row stream
// of a sharded matrix job delivers every row exactly once and finishes
// with an aggregate byte-identical to the non-streaming result.
func TestServerStreamRows(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1, Shards: 3})
	var v jobs.View
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallMatrixJob(), &v); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	// Open the stream while the job runs: rows arrive as shards finish.
	rows, result, streamErr := readStream(t, ts.URL+"/v1/jobs/"+v.ID+"/result?stream=rows")
	if streamErr != nil {
		t.Fatalf("stream error: %+v", streamErr)
	}
	var mx jobs.MatrixResult
	if err := json.Unmarshal(result, &mx); err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(mx.Configs) {
		t.Fatalf("stream delivered %d rows, matrix has %d", len(rows), len(mx.Configs))
	}
	seen := make(map[int]bool)
	for _, r := range rows {
		if seen[r.Index] {
			t.Fatalf("row %d streamed twice", r.Index)
		}
		seen[r.Index] = true
		if r.Config != mx.Configs[r.Index] {
			t.Errorf("row %d config %q, aggregate says %q", r.Index, r.Config, mx.Configs[r.Index])
		}
	}
	// The final aggregate is the non-streaming payload, byte for byte.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var direct json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&direct); err != nil {
		t.Fatal(err)
	}
	if string(direct) != string(result) {
		t.Error("streamed aggregate differs from GET /result payload")
	}
}

// TestServerStreamCachedJob: a cache-hit job has a closed, empty feed,
// so its rows are synthesized from the stored payload — the stream
// protocol looks identical to a freshly computed job's.
func TestServerStreamCachedJob(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1})
	var v jobs.View
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallMatrixJob(), &v); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	pollTerminal(t, ts.URL, v.ID, 30*time.Second)
	var v2 jobs.View
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallMatrixJob(), &v2); resp.StatusCode != http.StatusCreated {
		t.Fatalf("resubmit: HTTP %d", resp.StatusCode)
	}
	if !v2.Cached {
		t.Fatal("resubmit missed the cache")
	}
	rows, result, streamErr := readStream(t, ts.URL+"/v1/jobs/"+v2.ID+"/result?stream=rows")
	if streamErr != nil {
		t.Fatalf("stream error: %+v", streamErr)
	}
	var mx jobs.MatrixResult
	if err := json.Unmarshal(result, &mx); err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(mx.Configs) || len(rows) == 0 {
		t.Fatalf("cached stream delivered %d rows, matrix has %d", len(rows), len(mx.Configs))
	}
	for i, r := range rows {
		if r.Index != i || r.Config != mx.Configs[i] {
			t.Fatalf("synthesized row %d = {%d %q}", i, r.Index, r.Config)
		}
	}
}

// TestServerStreamErrors: unknown jobs fail with the plain apiError shape
// before the stream starts; a cancelled job's stream terminates with an
// error event.
func TestServerStreamErrors(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1})
	var ae apiError
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-999/result?stream=rows", nil, &ae); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job stream: HTTP %d, want 404", resp.StatusCode)
	}
	if ae.Code != "not_found" {
		t.Errorf("404 code = %q", ae.Code)
	}

	big := map[string]any{
		"kind":    "matrix",
		"bench":   "paper-biquad",
		"options": map[string]any{"points": 20001},
	}
	var v jobs.View
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", big, &v); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil, &jobs.View{}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}
	pollTerminal(t, ts.URL, v.ID, 30*time.Second)
	rows, result, streamErr := readStream(t, ts.URL+"/v1/jobs/"+v.ID+"/result?stream=rows")
	if result != nil || streamErr == nil || streamErr.Code != "finished" {
		t.Fatalf("cancelled job stream: rows=%d result=%v err=%+v", len(rows), result != nil, streamErr)
	}
}

// TestServerTwoReplicasSharedStore is the distributed acceptance test:
// two in-process replicas share one fsstore directory; the second serves
// the first's result as a cache hit without touching the engine.
func TestServerTwoReplicasSharedStore(t *testing.T) {
	dir := t.TempDir()
	newStore := func() jobs.Store {
		st, err := jobs.NewFSStore(dir, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	tsA, _ := startServer(t, jobs.Config{Workers: 1}, jobs.WithStore(newStore()))
	tsB, _ := startServer(t, jobs.Config{Workers: 1}, jobs.WithStore(newStore()))

	var v jobs.View
	if resp := doJSON(t, http.MethodPost, tsA.URL+"/v1/jobs", smallMatrixJob(), &v); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit to A: HTTP %d", resp.StatusCode)
	}
	done := pollTerminal(t, tsA.URL, v.ID, 30*time.Second)
	if done.State != jobs.StateDone {
		t.Fatalf("job on A finished %s: %s", done.State, done.Err)
	}

	mid := obs.Reg().Snapshot()
	var v2 jobs.View
	if resp := doJSON(t, http.MethodPost, tsB.URL+"/v1/jobs", smallMatrixJob(), &v2); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit to B: HTTP %d", resp.StatusCode)
	}
	if !v2.Cached || v2.State != jobs.StateDone {
		t.Fatalf("replica B: cached=%v state=%s, want cached done", v2.Cached, v2.State)
	}
	after := obs.Reg().Snapshot()
	if d := after["jobs_cache_hits_total"].Value - mid["jobs_cache_hits_total"].Value; d != 1 {
		t.Errorf("cache hits delta = %g, want 1", d)
	}
	if d := after["detect_solves_total"].Value - mid["detect_solves_total"].Value; d != 0 {
		t.Errorf("replica B simulated anyway: %g new solves", d)
	}

	// Both replicas serve byte-identical payloads.
	var ra, rb json.RawMessage
	if resp := doJSON(t, http.MethodGet, tsA.URL+"/v1/jobs/"+v.ID+"/result", nil, &ra); resp.StatusCode != http.StatusOK {
		t.Fatalf("result from A: HTTP %d", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodGet, tsB.URL+"/v1/jobs/"+v2.ID+"/result", nil, &rb); resp.StatusCode != http.StatusOK {
		t.Fatalf("result from B: HTTP %d", resp.StatusCode)
	}
	if string(ra) != string(rb) {
		t.Error("replicas disagree on the shared payload")
	}

	// The health snapshot reports the disk store.
	var health healthBody
	if resp := doJSON(t, http.MethodGet, tsB.URL+"/healthz", nil, &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	if health.Store.Kind != "fs" || health.Store.Path != dir || health.Store.Entries == 0 {
		t.Errorf("healthz store = %+v", health.Store)
	}
}
