package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"analogdft/internal/jobs"
	"analogdft/internal/obs"
)

// startServer boots the handler over a real manager and tears both down
// with the test. Extra options (WithStore, WithShards, …) layer on top of
// the config.
func startServer(t *testing.T, cfg jobs.Config, extra ...jobs.Option) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	mgr := jobs.New(append([]jobs.Option{jobs.WithConfig(cfg)}, extra...)...)
	ts := httptest.NewServer(newServer(mgr))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := mgr.Close(ctx); err != nil {
			t.Errorf("manager close: %v", err)
		}
	})
	return ts, mgr
}

// doJSON performs a request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, raw, err)
		}
	}
	return resp
}

// pollTerminal polls the status endpoint until the job finishes.
func pollTerminal(t *testing.T, base, id string, timeout time.Duration) jobs.View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var v jobs.View
		resp := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, &v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status poll: HTTP %d", resp.StatusCode)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.View{}
}

// smallMatrixJob is the paper-biquad matrix request the smoke path uses:
// few sweep points so it simulates in well under a second.
func smallMatrixJob() map[string]any {
	return map[string]any{
		"kind":    "matrix",
		"bench":   "paper-biquad",
		"options": map[string]any{"points": 31},
	}
}

// TestServerMatrixCacheRoundTrip is the headline e2e: a paper-biquad
// matrix job runs once; the identical resubmission is served from the
// cache — hit counter up by one, zero new engine solves.
func TestServerMatrixCacheRoundTrip(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1})
	before := obs.Reg().Snapshot()

	var v jobs.View
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallMatrixJob(), &v)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Errorf("Location = %q", loc)
	}
	done := pollTerminal(t, ts.URL, v.ID, 30*time.Second)
	if done.State != jobs.StateDone {
		t.Fatalf("job state = %s (err %q), want done", done.State, done.Err)
	}

	var result jobs.MatrixResult
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"/result", nil, &result)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d", resp.StatusCode)
	}
	if len(result.Configs) == 0 || len(result.Faults) == 0 || result.Stats.Solves == 0 {
		t.Fatalf("degenerate result: %+v", result)
	}

	mid := obs.Reg().Snapshot()
	if d := mid["detect_solves_total"].Value - before["detect_solves_total"].Value; d == 0 {
		t.Fatal("first run did not reach the engine")
	}

	// Identical resubmission: answered from the cache, no simulation.
	var v2 jobs.View
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallMatrixJob(), &v2)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("resubmit: HTTP %d", resp.StatusCode)
	}
	if !v2.Cached || v2.State != jobs.StateDone {
		t.Fatalf("resubmit: cached=%v state=%s, want cached done", v2.Cached, v2.State)
	}
	var result2 jobs.MatrixResult
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+v2.ID+"/result", nil, &result2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached result: HTTP %d", resp.StatusCode)
	}
	if result2.Coverage != result.Coverage || result2.Stats.Solves != result.Stats.Solves {
		t.Errorf("cached result differs: %+v vs %+v", result2, result)
	}

	after := obs.Reg().Snapshot()
	if d := after["jobs_cache_hits_total"].Value - mid["jobs_cache_hits_total"].Value; d != 1 {
		t.Errorf("cache hits delta = %g, want 1", d)
	}
	if d := after["detect_solves_total"].Value - mid["detect_solves_total"].Value; d != 0 {
		t.Errorf("cache hit triggered %g new solves", d)
	}
}

// TestServerCancelInFlight: DELETE on a running job stops the simulation
// within a cell boundary and the job lands in canceled.
func TestServerCancelInFlight(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1})
	// A deliberately heavy sweep so the job is still mid-matrix when the
	// cancel arrives.
	big := map[string]any{
		"kind":    "matrix",
		"bench":   "paper-biquad",
		"options": map[string]any{"points": 20001},
	}
	var v jobs.View
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", big, &v); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	// Wait until the worker picks it up, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var s jobs.View
		doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID, nil, &s)
		if s.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	var cv jobs.View
	if resp := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil, &cv); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}
	done := pollTerminal(t, ts.URL, v.ID, 30*time.Second)
	if done.State != jobs.StateCanceled {
		t.Fatalf("state after cancel = %s, want canceled", done.State)
	}
	// The result endpoint reports the abort, not a payload.
	var ae apiError
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"/result", nil, &ae); resp.StatusCode != http.StatusConflict {
		t.Errorf("result of cancelled job: HTTP %d, want 409", resp.StatusCode)
	}
	if ae.Code != "finished" {
		t.Errorf("409 code = %q, want finished", ae.Code)
	}
}

// TestServerBackpressure: with one worker and a one-slot queue, the third
// concurrent job bounces with 429 and a Retry-After header.
func TestServerBackpressure(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1, QueueDepth: 1})
	big := func(points int) map[string]any {
		return map[string]any{
			"kind":    "matrix",
			"bench":   "paper-biquad",
			"options": map[string]any{"points": points},
		}
	}
	var ids []string
	for i := 0; i < 2; i++ {
		var v jobs.View
		if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", big(20001+i), &v); resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	var eb apiError
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", big(20003), &eb)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if eb.Code != "queue_full" || eb.RetryAfter != 1 || eb.QueueDepth == nil || eb.QueueCapacity == nil {
		t.Errorf("429 body = %+v, want queue_full with occupancy", eb)
	}
	// Cancel the backlog so teardown stays fast.
	for _, id := range ids {
		doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil, &jobs.View{})
	}
	for _, id := range ids {
		pollTerminal(t, ts.URL, id, 30*time.Second)
	}
}

// TestServerValidationAndLookup covers the 400/404/405 mappings.
func TestServerValidationAndLookup(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1})
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{http.MethodPost, "/v1/jobs", map[string]any{}, http.StatusBadRequest},                 // no kind
		{http.MethodPost, "/v1/jobs", map[string]any{"kind": "matrix"}, http.StatusBadRequest}, // no circuit
		{http.MethodPost, "/v1/jobs", map[string]any{"kind": "matrix", "bench": "nope"}, http.StatusBadRequest},
		{http.MethodPost, "/v1/jobs", map[string]any{"kind": "matrix", "bench": "paper-biquad", "bogus": 1}, http.StatusBadRequest}, // unknown field
		{http.MethodGet, "/v1/jobs/job-999", nil, http.StatusNotFound},
		{http.MethodGet, "/v1/jobs/job-999/result", nil, http.StatusNotFound},
		{http.MethodDelete, "/v1/jobs/job-999", nil, http.StatusNotFound},
		{http.MethodPut, "/v1/jobs", nil, http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		resp := doJSON(t, c.method, ts.URL+c.path, c.body, nil)
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: HTTP %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

// TestServerAuxEndpoints: benches, healthz and a non-empty Prometheus
// exposition that includes the job-layer series.
func TestServerAuxEndpoints(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1})

	var benches []string
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/benches", nil, &benches); resp.StatusCode != http.StatusOK {
		t.Fatalf("benches: HTTP %d", resp.StatusCode)
	}
	found := false
	for _, b := range benches {
		if b == "paper-biquad" {
			found = true
		}
	}
	if !found {
		t.Errorf("benches %v missing paper-biquad", benches)
	}

	var health map[string]any
	if resp := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &health); resp.StatusCode != http.StatusOK || health["ok"] != true {
		t.Errorf("healthz: HTTP %d, body %v", resp.StatusCode, health)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if resp.StatusCode != http.StatusOK || len(text) == 0 {
		t.Fatalf("metrics: HTTP %d, %d bytes", resp.StatusCode, len(text))
	}
	for _, series := range []string{"jobs_cache_hits_total", "jobs_queue_depth", "dftserved_http_submit_seconds", "detect_solves_total"} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics exposition missing %s", series)
		}
	}
}

// TestServerListAndInlineDeck: an inline-deck evaluate job round-trips
// and shows up in the listing.
func TestServerListAndInlineDeck(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1})
	deck := `* inverting amplifier
R1 in mid 1k
R2 mid out 2k
OA1 0 mid out
R3 out 0 10k
.input in
.output out
.chain OA1
.end
`
	req := map[string]any{
		"kind":    "evaluate",
		"deck":    deck,
		"options": map[string]any{"points": 21},
	}
	var v jobs.View
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, &v); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	done := pollTerminal(t, ts.URL, v.ID, 30*time.Second)
	if done.State != jobs.StateDone {
		t.Fatalf("state = %s (err %q), want done", done.State, done.Err)
	}
	var result jobs.EvaluateResult
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"/result", nil, &result); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d", resp.StatusCode)
	}
	if len(result.Faults) == 0 {
		t.Error("evaluate result has no fault verdicts")
	}

	var list []jobs.View
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil, &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("list: HTTP %d", resp.StatusCode)
	}
	seen := false
	for _, item := range list {
		if item.ID == v.ID {
			seen = true
		}
	}
	if !seen {
		t.Errorf("job %s missing from listing %v", v.ID, list)
	}
}

// TestServerOptimizeJob: the optimize kind returns a best candidate with
// full coverage on the paper biquad.
func TestServerOptimizeJob(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{Workers: 1})
	req := map[string]any{
		"kind":    "optimize",
		"bench":   "paper-biquad",
		"cost":    "opamps",
		"options": map[string]any{"points": 31},
	}
	var v jobs.View
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, &v); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	done := pollTerminal(t, ts.URL, v.ID, 60*time.Second)
	if done.State != jobs.StateDone {
		t.Fatalf("state = %s (err %q), want done", done.State, done.Err)
	}
	var result jobs.OptimizeResult
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"/result", nil, &result); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d", resp.StatusCode)
	}
	if !strings.Contains(result.CostName, "opamp") || len(result.Best.Configs) == 0 {
		t.Errorf("unexpected optimize result: %+v", result)
	}
	if result.Stats.Solves == 0 {
		t.Error("optimize result carries no simulation stats")
	}
}

// TestServerDrainUnderLoad: closing the manager while a job runs lets it
// finish (graceful drain), and later submissions get 503.
func TestServerDrainUnderLoad(t *testing.T) {
	ts, mgr := startServer(t, jobs.Config{Workers: 1})
	var v jobs.View
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallMatrixJob(), &v); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := mgr.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	done, err := mgr.Get(v.ID)
	if err != nil || done.State != jobs.StateDone {
		t.Fatalf("after drain: state=%s err=%v, want done", done.State, err)
	}
	var eb apiError
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallMatrixJob(), &eb); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after close: HTTP %d, want 503", resp.StatusCode)
	}
	if eb.Code != "draining" || eb.Message == "" {
		t.Errorf("503 body = %+v, want code draining", eb)
	}
}
