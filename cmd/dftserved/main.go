// Command dftserved serves the multi-configuration DFT workflow over
// HTTP: clients submit evaluate, matrix and optimize jobs as JSON (a
// built-in benchmark name or an inline SPICE deck), poll their status,
// cancel them mid-simulation, and fetch results. Identical jobs are
// answered from a content-addressed result cache without re-simulating.
//
//	dftserved [-addr :8080] [-workers 2] [-queue 16] [-cache 128]
//	          [-store-dir DIR] [-store-bytes N] [-shards K]
//	          [-trace-ring 64] [-slo-target 0.99] [-timing]
//
// With -store-dir the result cache lives on disk, content-addressed by
// job key, so any number of replicas pointed at the same directory serve
// each other's finished results. With -shards K > 1, matrix jobs are
// built as K concurrent configuration-range shards and merged — the
// merged matrix is byte-identical to an unsharded build.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a job (201; 429 + Retry-After when the queue is full)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status (with a links object to its resources)
//	GET    /v1/jobs/{id}/result result payload (202 while running; ?stream=rows for NDJSON row streaming)
//	GET    /v1/jobs/{id}/trace  span tree of the job (410 once evicted from the ring)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/benches          built-in benchmark names
//	GET    /v1/debug/traces     retained trace summaries, newest first
//	GET    /v1/debug/slo        latency quantiles and error-budget snapshot
//	GET    /metrics             Prometheus text exposition (with slow-solve exemplars)
//	GET    /healthz             liveness + build/queue/cache snapshot
//	GET    /debug/pprof/        standard profiles
//
// Every response carries a `traceparent` header: the inbound one when the
// client sent a valid W3C trace context, a freshly minted identity
// otherwise. A submitted job's spans — enqueue wait, cache lookup, engine
// phases — are recorded under that trace ID and served from
// /v1/jobs/{id}/trace.
//
// On SIGINT/SIGTERM the server stops accepting requests and drains
// in-flight jobs for -drain before forcing cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"analogdft/internal/jobs"
	"analogdft/internal/obs"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		workers    = flag.Int("workers", 2, "jobs simulated concurrently")
		queue      = flag.Int("queue", 16, "queued jobs beyond the running ones before 429")
		cache      = flag.Int("cache", 128, "result cache entries (in-memory store only)")
		storeDir   = flag.String("store-dir", "", "disk-backed result store directory, shareable between replicas (empty = in-memory)")
		storeBytes = flag.Int64("store-bytes", 256<<20, "payload bytes retained in the disk store before LRU eviction")
		shards     = flag.Int("shards", 1, "concurrent configuration-range shards per matrix job")
		simWorkers = flag.Int("sim-workers", 0, "default per-job simulation parallelism (0 = GOMAXPROCS)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
		traceRing  = flag.Int("trace-ring", 64, "completed job traces retained for /v1/jobs/{id}/trace")
		sloGoal    = flag.Float64("slo-target", defaultSLOTarget, "availability objective for the error-budget gauge (fraction of non-5xx responses)")
		timing     = flag.Bool("timing", false, "collect latency metrics and schedule-dependent spans (per-chunk solves, enqueue waits)")
	)
	flag.Parse()
	if *sloGoal <= 0 || *sloGoal >= 1 {
		fmt.Fprintln(os.Stderr, "dftserved: -slo-target must be in (0, 1)")
		os.Exit(2)
	}
	setSLOTarget(*sloGoal)
	obs.Default().SetTiming(*timing)
	if err := run(*addr, jobs.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		SimWorkers:   *simWorkers,
		TraceEntries: *traceRing,
		Shards:       *shards,
	}, *storeDir, *storeBytes, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "dftserved:", err)
		os.Exit(1)
	}
}

// run serves until a termination signal, then drains.
func run(addr string, cfg jobs.Config, storeDir string, storeBytes int64, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	opts := []jobs.Option{jobs.WithConfig(cfg)}
	if storeDir != "" {
		store, err := jobs.NewFSStore(storeDir, storeBytes)
		if err != nil {
			return err
		}
		opts = append(opts, jobs.WithStore(store))
	}
	mgr := jobs.New(opts...)
	srv := &http.Server{Handler: newServer(mgr)}

	// The smoke tests scrape this line for the ephemeral port.
	fmt.Printf("dftserved: listening on %s\n", ln.Addr())
	srvlog.Info("listening", "addr", ln.Addr().String(),
		"workers", mgr.Config().Workers, "queue", mgr.Config().QueueDepth,
		"store", mgr.StoreStats().Kind, "shards", mgr.Config().Shards)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	srvlog.Info("shutting down", "drain", drain.String())

	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		srvlog.Warn("http shutdown", "err", err)
	}
	if err := mgr.Close(dctx); err != nil {
		srvlog.Warn("drain incomplete, jobs cancelled", "err", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srvlog.Info("bye")
	return nil
}
