// Command dftserved serves the multi-configuration DFT workflow over
// HTTP: clients submit evaluate, matrix and optimize jobs as JSON (a
// built-in benchmark name or an inline SPICE deck), poll their status,
// cancel them mid-simulation, and fetch results. Identical jobs are
// answered from a content-addressed result cache without re-simulating.
//
//	dftserved [-addr :8080] [-workers 2] [-queue 16] [-cache 128]
//
// Endpoints:
//
//	POST   /v1/jobs             submit a job (201; 429 + Retry-After when the queue is full)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result result payload (202 while running)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/benches          built-in benchmark names
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness
//	GET    /debug/pprof/        standard profiles
//
// On SIGINT/SIGTERM the server stops accepting requests and drains
// in-flight jobs for -drain before forcing cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"analogdft/internal/jobs"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		workers    = flag.Int("workers", 2, "jobs simulated concurrently")
		queue      = flag.Int("queue", 16, "queued jobs beyond the running ones before 429")
		cache      = flag.Int("cache", 128, "result cache entries")
		simWorkers = flag.Int("sim-workers", 0, "default per-job simulation parallelism (0 = GOMAXPROCS)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	)
	flag.Parse()
	if err := run(*addr, jobs.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		SimWorkers:   *simWorkers,
	}, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "dftserved:", err)
		os.Exit(1)
	}
}

// run serves until a termination signal, then drains.
func run(addr string, cfg jobs.Config, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mgr := jobs.NewManager(cfg)
	srv := &http.Server{Handler: newServer(mgr)}

	// The smoke tests scrape this line for the ephemeral port.
	fmt.Printf("dftserved: listening on %s\n", ln.Addr())
	srvlog.Info("listening", "addr", ln.Addr().String(),
		"workers", mgr.Config().Workers, "queue", mgr.Config().QueueDepth, "cache", mgr.Config().CacheEntries)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	srvlog.Info("shutting down", "drain", drain.String())

	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		srvlog.Warn("http shutdown", "err", err)
	}
	if err := mgr.Close(dctx); err != nil {
		srvlog.Warn("drain incomplete, jobs cancelled", "err", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srvlog.Info("bye")
	return nil
}
