// Command benchjson converts `go test -bench` text output (read from
// stdin) into the committed BENCH_<date>.json perf-trajectory format:
//
//	go test -bench=. -benchmem -count=3 ./... | benchjson -o BENCH_2026-08-05.json
//
// The go version is stamped from the running toolchain; -date overrides
// the date stamp (default: today).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"analogdft/internal/obs/benchfmt"
)

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	date := flag.String("date", "", "date stamp YYYY-MM-DD (default: today)")
	flag.Parse()

	if err := run(os.Stdin, *outPath, *date); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in *os.File, outPath, date string) error {
	f, err := benchfmt.Parse(in)
	if err != nil {
		return err
	}
	if date == "" {
		date = time.Now().Format("2006-01-02")
	}
	f.Date = date
	f.GoVersion = runtime.Version()

	out := os.Stdout
	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		out = of
	}
	if err := f.WriteJSON(out); err != nil {
		return err
	}
	if outPath != "" {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(f.Benchmarks), outPath)
	}
	return nil
}
