package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden JSON files under testdata/lint")

// fixtureFaults gives per-fixture -faults values; NL011 only fires when a
// fault list is cross-checked.
var fixtureFaults = map[string]string{
	"NL011": "R1,R9",
}

func TestFixturesGolden(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "lint")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".cir") {
			continue
		}
		seen++
		code := strings.TrimSuffix(name, ".cir")
		t.Run(code, func(t *testing.T) {
			var out, errb strings.Builder
			cfg := config{
				jsonOut: true,
				faults:  fixtureFaults[code],
				paths:   []string{filepath.Join(dir, name)},
			}
			status := run(cfg, &out, &errb)
			if status == 2 {
				t.Fatalf("exit 2: %s", errb.String())
			}
			if !strings.Contains(out.String(), `"code": "`+code+`"`) {
				t.Errorf("fixture did not fire %s:\n%s", code, out.String())
			}
			golden := filepath.Join(dir, code+".golden.json")
			if *update {
				if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run go test ./cmd/netlint -update): %v", err)
			}
			if out.String() != string(want) {
				t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, out.String(), want)
			}
		})
	}
	if seen != 14 {
		t.Errorf("expected 14 fixtures, found %d", seen)
	}
}

func TestBiquadDeckClean(t *testing.T) {
	var out, errb strings.Builder
	path := filepath.Join("..", "..", "testdata", "biquad.cir")
	status := run(config{werror: true, paths: []string{path}}, &out, &errb)
	if status != 0 {
		t.Fatalf("status = %d, stderr = %q, stdout:\n%s", status, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("stdout = %q", out.String())
	}
}

func TestExitStatus(t *testing.T) {
	lint := func(cfg config) int {
		var out, errb strings.Builder
		return run(cfg, &out, &errb)
	}
	dir := filepath.Join("..", "..", "testdata", "lint")
	if got := lint(config{}); got != 2 {
		t.Errorf("no decks: status = %d, want 2", got)
	}
	if got := lint(config{paths: []string{filepath.Join(dir, "no-such.cir")}}); got != 2 {
		t.Errorf("missing file: status = %d, want 2", got)
	}
	if got := lint(config{paths: []string{filepath.Join(dir, "NL002.cir")}}); got != 1 {
		t.Errorf("error-severity deck: status = %d, want 1", got)
	}
	warnOnly := filepath.Join(dir, "NL009.cir")
	if got := lint(config{paths: []string{warnOnly}}); got != 0 {
		t.Errorf("warning deck without -Werror: status = %d, want 0", got)
	}
	if got := lint(config{werror: true, paths: []string{warnOnly}}); got != 1 {
		t.Errorf("warning deck with -Werror: status = %d, want 1", got)
	}
}

func TestTextOutputCarriesLineAndHint(t *testing.T) {
	var out, errb strings.Builder
	path := filepath.Join("..", "..", "testdata", "lint", "NL002.cir")
	if status := run(config{paths: []string{path}}, &out, &errb); status != 1 {
		t.Fatalf("status = %d: %s", status, errb.String())
	}
	txt := out.String()
	if !strings.Contains(txt, path+":4: NL002") || !strings.Contains(txt, "fix:") {
		t.Errorf("text output = %q", txt)
	}
}

func TestCodesListing(t *testing.T) {
	var out, errb strings.Builder
	if status := run(config{codes: true}, &out, &errb); status != 0 {
		t.Fatalf("status = %d", status)
	}
	for _, want := range []string{"NL001", "NL014", "floating-node", "identical-configs"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("codes listing missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if status := run(config{codes: true, jsonOut: true}, &out, &errb); status != 0 {
		t.Fatalf("json status = %d", status)
	}
	if !strings.Contains(out.String(), `"code": "NL013"`) {
		t.Errorf("json codes listing:\n%s", out.String())
	}
}
