// Command netlint statically checks SPICE decks before simulation:
//
//	netlint [flags] circuit.cir [more.cir ...]
//
// It parses each deck and runs every structural check of the netlint
// package — connectivity, MNA-singularity predictors, deck hygiene, and
// the multi-configuration DFT structure — without assembling a single
// linear system. Findings are printed as text (default) or JSON (-json),
// each carrying a stable NLxxx code, a severity, the offending component
// or node, the deck line, and a fix hint.
//
// Exit status: 0 when every deck is clean at the gated severity, 1 when
// findings exist (errors, or warnings too under -Werror), 2 on usage,
// read or parse failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"analogdft/internal/netlint"
	"analogdft/internal/spice"
)

// config carries the parsed command line.
type config struct {
	jsonOut bool
	werror  bool
	codes   bool
	faults  string
	paths   []string
}

func main() {
	var cfg config
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit reports as a JSON array instead of text")
	flag.BoolVar(&cfg.werror, "Werror", false, "treat warnings as errors for the exit status")
	flag.BoolVar(&cfg.codes, "codes", false, "list every registered check and exit")
	flag.StringVar(&cfg.faults, "faults", "", "comma-separated component names a fault list will target (cross-checked as NL011)")
	flag.Parse()
	cfg.paths = flag.Args()
	os.Exit(run(cfg, os.Stdout, os.Stderr))
}

// run does the work of main with injectable streams, returning the exit
// status.
func run(cfg config, stdout, stderr io.Writer) int {
	if cfg.codes {
		return listCodes(cfg, stdout, stderr)
	}
	if len(cfg.paths) == 0 {
		fmt.Fprintln(stderr, "netlint: no decks given (usage: netlint [flags] circuit.cir ...)")
		return 2
	}

	var faultTargets []string
	for _, t := range strings.Split(cfg.faults, ",") {
		if t = strings.TrimSpace(t); t != "" {
			faultTargets = append(faultTargets, t)
		}
	}

	status := 0
	var reports []*netlint.Report
	for _, path := range cfg.paths {
		rep, err := lintPath(path, faultTargets)
		if err != nil {
			fmt.Fprintf(stderr, "netlint: %s: %v\n", path, err)
			status = 2
			continue
		}
		reports = append(reports, rep)
		gate := netlint.SevError
		if cfg.werror {
			gate = netlint.SevWarning
		}
		if rep.Count(gate) > 0 && status == 0 {
			status = 1
		}
		if !cfg.jsonOut {
			if rep.Clean() {
				fmt.Fprintf(stdout, "%s: clean\n", path)
			} else if err := rep.WriteText(stdout); err != nil {
				fmt.Fprintln(stderr, "netlint:", err)
				return 2
			}
		}
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(stderr, "netlint:", err)
			return 2
		}
	}
	return status
}

// lintPath parses and analyzes one deck. Like the bench loader, a deck
// without a .chain directive chains every opamp in netlist order.
func lintPath(path string, faultTargets []string) (*netlint.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	deck, err := spice.Parse(f)
	if err != nil {
		return nil, err
	}
	chain := deck.Chain
	if len(chain) == 0 {
		for _, op := range deck.Circuit.Opamps() {
			chain = append(chain, op.Name())
		}
	}
	return netlint.Analyze(netlint.Source{
		Circuit:      deck.Circuit,
		Chain:        chain,
		Deck:         deck,
		FaultTargets: faultTargets,
		Name:         path,
	}), nil
}

// listCodes prints the check registry.
func listCodes(cfg config, stdout, stderr io.Writer) int {
	checks := netlint.Checks()
	if cfg.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(checks); err != nil {
			fmt.Fprintln(stderr, "netlint:", err)
			return 2
		}
		return 0
	}
	for _, c := range checks {
		fmt.Fprintf(stdout, "%s %-8s %-22s %s\n", c.Code, c.Severity, c.Name, c.Summary)
	}
	return 0
}
