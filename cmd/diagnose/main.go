// Command diagnose builds a fault dictionary for a netlist over its DFT
// configurations and either prints the dictionary (ambiguity groups,
// diagnostic resolution) or locates an injected fault:
//
//	diagnose [flags] [circuit.cir]
//	diagnose -inject fR4 circuit.cir
//
// With no deck argument the built-in paper biquad is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"analogdft"
	"analogdft/internal/obs/cliobs"
)

func main() {
	var (
		frac    = flag.Float64("frac", 0.20, "deviation fault size (fraction)")
		eps     = flag.Float64("eps", 0.10, "signature threshold ε (fraction)")
		points  = flag.Int("points", 120, "frequency grid points")
		bands   = flag.Int("bands", 4, "frequency bands per configuration")
		loHz    = flag.Float64("lo", 100, "region low edge (Hz)")
		hiHz    = flag.Float64("hi", 5600, "region high edge (Hz)")
		configs = flag.String("configs", "", "comma-separated configuration indices (default: all non-transparent)")
		inject  = flag.String("inject", "", "fault ID to inject and diagnose (e.g. fR4)")
	)
	lintf := cliobs.RegisterLint(flag.CommandLine)
	obsf := cliobs.RegisterObs(flag.CommandLine)
	flag.Parse()

	sess, err := obsf.Start("diagnose", nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	sess.Report.SetInput("deck", flag.Arg(0))
	runErr := run(flag.Arg(0), *frac, *eps, *points, *bands, *loHz, *hiHz, *configs, *inject, lintf)
	if err := sess.Finish(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", runErr)
		os.Exit(1)
	}
}

func run(path string, frac, eps float64, points, bands int, loHz, hiHz float64, configsCSV, inject string, lintf *cliobs.LintFlags) error {
	bench, err := loadBench(path, lintf)
	if err != nil {
		return err
	}
	faults := analogdft.DeviationFaults(bench.Circuit, frac)
	region := analogdft.Region{LoHz: loHz, HiHz: hiHz}
	mod, err := analogdft.ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		return err
	}
	cfgIdxs, err := parseConfigs(configsCSV, mod.NumConfigurations())
	if err != nil {
		return err
	}
	dict, err := analogdft.BuildDictionary(mod, cfgIdxs, faults, region,
		analogdft.DiagnosisOptions{Eps: eps, Points: points, Bands: bands})
	if err != nil {
		return err
	}

	fmt.Printf("dictionary: %s, %d configurations × %d bands, %d faults\n",
		bench.Circuit.Name, len(dict.Configs), dict.Bands, len(dict.Faults))
	fmt.Printf("diagnostic resolution: %.2f\n", dict.Resolution())
	fmt.Println("ambiguity groups:")
	for _, g := range dict.AmbiguityGroups() {
		fmt.Printf("  %v\n", g)
	}

	if inject == "" {
		return nil
	}
	target, ok := faults.ByID(inject)
	if !ok {
		return fmt.Errorf("unknown fault %q (have %v)", inject, faults.IDs())
	}
	sig, err := dict.SignatureOfCircuit(func(ckt *analogdft.Circuit) (*analogdft.Circuit, error) {
		return target.Apply(ckt)
	})
	if err != nil {
		return err
	}
	fmt.Printf("\ninjected %s → signature %s\n", target.ID, sig)
	if ids := dict.Diagnose(sig); len(ids) > 0 {
		fmt.Printf("diagnosis (exact): %v\n", ids)
	} else {
		near, dist := dict.Nearest(sig)
		fmt.Printf("diagnosis (nearest, distance %d): %v\n", dist, near)
	}
	return nil
}

func parseConfigs(csv string, numConfigs int) ([]int, error) {
	if csv == "" {
		var out []int
		for i := 0; i < numConfigs-1; i++ { // exclude transparent
			out = append(out, i)
		}
		return out, nil
	}
	var out []int
	for _, tok := range strings.Split(csv, ",") {
		idx, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("bad configuration index %q", tok)
		}
		out = append(out, idx)
	}
	return out, nil
}

func loadBench(path string, lintf *cliobs.LintFlags) (*analogdft.Bench, error) {
	b, err := analogdft.LoadBench(path)
	if err != nil {
		return nil, err
	}
	if len(b.Chain) == 0 {
		return nil, fmt.Errorf("deck %s has no opamps", path)
	}
	if err := lintf.Preflight("diagnose", b, os.Stderr); err != nil {
		return nil, err
	}
	return b, nil
}
