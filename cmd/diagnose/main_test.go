package main

import (
	"analogdft/internal/obs/cliobs"

	"strings"
	"testing"
)

func TestParseConfigs(t *testing.T) {
	got, err := parseConfigs("", 8)
	if err != nil || len(got) != 7 {
		t.Fatalf("default configs = %v, %v", got, err)
	}
	got, err = parseConfigs("1, 2,5", 8)
	if err != nil || len(got) != 3 || got[2] != 5 {
		t.Fatalf("explicit configs = %v, %v", got, err)
	}
	if _, err := parseConfigs("1,x", 8); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestRunDictionaryOnly(t *testing.T) {
	if err := run("", 0.2, 0.1, 60, 3, 100, 5600, "0,1,2", "", &cliobs.LintFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInjectAndDiagnose(t *testing.T) {
	if err := run("", 0.2, 0.1, 60, 3, 100, 5600, "", "fR4", &cliobs.LintFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFault(t *testing.T) {
	err := run("", 0.2, 0.1, 60, 3, 100, 5600, "0,1", "fZZ", &cliobs.LintFlags{})
	if err == nil || !strings.Contains(err.Error(), "unknown fault") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunFromDeck(t *testing.T) {
	if err := run("../../testdata/biquad.cir", 0.2, 0.1, 40, 2, 100, 5600, "0,1", "", &cliobs.LintFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadBenchMissing(t *testing.T) {
	if _, err := loadBench("/no/such.cir", &cliobs.LintFlags{}); err == nil {
		t.Fatal("missing deck accepted")
	}
}
