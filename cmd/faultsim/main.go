// Command faultsim fault-simulates a netlist and prints the fault
// detectability matrix and ω-detectability table over all DFT
// configurations (or just the functional circuit with -initial):
//
//	faultsim [flags] circuit.cir
//
// With no deck argument the built-in paper biquad is used.
package main

import (
	"flag"
	"fmt"
	"os"

	"analogdft"
	"analogdft/internal/report"
	"analogdft/internal/spice"
)

func main() {
	var (
		frac    = flag.Float64("frac", 0.20, "deviation fault size (fraction)")
		eps     = flag.Float64("eps", 0.10, "detection tolerance ε (fraction)")
		floor   = flag.Float64("floor", 1e-4, "measurement floor relative to peak")
		points  = flag.Int("points", 241, "frequency grid points")
		loHz    = flag.Float64("lo", 0, "pin Ω_reference low edge (Hz)")
		hiHz    = flag.Float64("hi", 0, "pin Ω_reference high edge (Hz)")
		initial = flag.Bool("initial", false, "evaluate only the unmodified circuit")
		csvPath = flag.String("csv", "", "write the matrix as CSV to this file")
		md      = flag.Bool("markdown", false, "render tables as GitHub markdown")
	)
	flag.Parse()

	if err := run(flag.Arg(0), *frac, *eps, *floor, *points, *loHz, *hiHz, *initial, *csvPath, *md); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run(path string, frac, eps, floor float64, points int, loHz, hiHz float64, initialOnly bool, csvPath string, markdown bool) error {
	bench, err := loadBench(path)
	if err != nil {
		return err
	}
	faults := analogdft.DeviationFaults(bench.Circuit, frac)
	opts := analogdft.Options{Eps: eps, MeasFloor: floor, Points: points}
	if loHz > 0 && hiHz > loHz {
		opts.Region = analogdft.Region{LoHz: loHz, HiHz: hiHz}
	}

	if initialOnly {
		row, err := analogdft.EvaluateCircuit(bench.Circuit, faults, opts)
		if err != nil {
			return err
		}
		fmt.Printf("circuit %s  Ω_reference = %s  ε = %.0f%%\n\n", bench.Circuit.Name, row.Region, 100*eps)
		fmt.Printf("%-8s %-11s %-9s %s\n", "fault", "detectable", "ω-det", "max |ΔT/T|")
		for _, e := range row.Evals {
			status := fmt.Sprintf("%.3g", e.MaxDev)
			if e.Err != nil {
				status = "error: " + e.Err.Error()
			}
			fmt.Printf("%-8s %-11v %7.1f%%  %s\n", e.Fault.ID, e.Detectable, e.OmegaDet, status)
		}
		fmt.Printf("\n%s\n", report.CoverageSummary(bench.Circuit.Name, row.FaultCoverage(), row.AvgOmegaDet(), 1))
		return nil
	}

	m, err := analogdft.ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		return err
	}
	mx, err := analogdft.BuildMatrix(m, faults, opts)
	if err != nil {
		return err
	}
	fmt.Printf("circuit %s  Ω_reference = %s  ε = %.0f%%  faults = %d  configurations = %d\n\n",
		bench.Circuit.Name, mx.Region, 100*eps, mx.NumFaults(), mx.NumConfigs())
	if markdown {
		if err := report.MatrixMarkdown(os.Stdout, mx); err != nil {
			return err
		}
		fmt.Println()
		if err := report.OmegaMarkdown(os.Stdout, mx); err != nil {
			return err
		}
		fmt.Println()
	} else {
		fmt.Println(report.DetMatrixTable(mx))
		fmt.Println(report.OmegaTable(mx, nil))
	}
	fmt.Println(report.CoverageSummary("all configurations", mx.FaultCoverage(), mx.AvgBestOmega(nil), mx.NumConfigs()))
	if mx.CellErrs > 0 {
		fmt.Printf("warning: %d cells failed to simulate (counted undetectable)\n", mx.CellErrs)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.MatrixCSV(f, mx); err != nil {
			return err
		}
		return f.Close()
	}
	return nil
}

func loadBench(path string) (*analogdft.Bench, error) {
	if path == "" {
		return analogdft.PaperBiquad(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	deck, err := spice.Parse(f)
	if err != nil {
		return nil, err
	}
	chain := deck.Chain
	if len(chain) == 0 {
		for _, op := range deck.Circuit.Opamps() {
			chain = append(chain, op.Name())
		}
	}
	return &analogdft.Bench{Circuit: deck.Circuit, Chain: chain, Description: "netlist " + path}, nil
}
