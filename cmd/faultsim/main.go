// Command faultsim fault-simulates a netlist and prints the fault
// detectability matrix and ω-detectability table over all DFT
// configurations (or just the functional circuit with -initial):
//
//	faultsim [flags] circuit.cir
//
// With no deck argument the built-in paper biquad is used. Cells whose
// simulation fails are listed individually (configuration, fault, cause);
// -strict turns any failed cell into a non-zero exit, -onerror selects
// the engine error policy (degrade, failfast or retry) and -stats prints
// the simulation effort summary. The shared observability flags
// (-log-level, -metrics-out, -trace-out, -pprof, -run-report) expose the
// run's telemetry.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"analogdft"
	"analogdft/internal/obs/cliobs"
	"analogdft/internal/report"
)

// errCellsFailed is the -strict failure: the matrix was built, but some
// cells are error placeholders rather than measurements.
var errCellsFailed = errors.New("cells failed to simulate")

// config carries the parsed command line.
type config struct {
	path       string
	frac       float64
	eps        float64
	floor      float64
	points     int
	loHz, hiHz float64
	initial    bool
	csvPath    string
	markdown   bool
	strict     bool
	sim        cliobs.SimFlags
	lint       cliobs.LintFlags
}

func main() {
	var cfg config
	flag.Float64Var(&cfg.frac, "frac", 0.20, "deviation fault size (fraction)")
	flag.Float64Var(&cfg.eps, "eps", 0.10, "detection tolerance ε (fraction)")
	flag.Float64Var(&cfg.floor, "floor", 1e-4, "measurement floor relative to peak")
	flag.IntVar(&cfg.points, "points", 241, "frequency grid points")
	flag.Float64Var(&cfg.loHz, "lo", 0, "pin Ω_reference low edge (Hz)")
	flag.Float64Var(&cfg.hiHz, "hi", 0, "pin Ω_reference high edge (Hz)")
	flag.BoolVar(&cfg.initial, "initial", false, "evaluate only the unmodified circuit")
	flag.StringVar(&cfg.csvPath, "csv", "", "write the matrix as CSV to this file")
	flag.BoolVar(&cfg.markdown, "markdown", false, "render tables as GitHub markdown")
	flag.BoolVar(&cfg.strict, "strict", false, "exit non-zero when any cell failed to simulate")
	cfg.sim.Register(flag.CommandLine)
	cfg.lint.Register(flag.CommandLine)
	obsf := cliobs.RegisterObs(flag.CommandLine)
	flag.Parse()
	cfg.path = flag.Arg(0)

	sess, err := obsf.Start("faultsim", nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
	sess.Report.SetInput("deck", cfg.path)
	runErr := run(cfg)
	if err := sess.Finish(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", runErr)
		os.Exit(1)
	}
}

func run(cfg config) error {
	bench, err := analogdft.LoadBench(cfg.path)
	if err != nil {
		return err
	}
	if err := cfg.lint.Preflight("faultsim", bench, os.Stderr); err != nil {
		return err
	}
	faults := analogdft.DeviationFaults(bench.Circuit, cfg.frac)
	opts := analogdft.Options{
		Eps:       cfg.eps,
		MeasFloor: cfg.floor,
		Points:    cfg.points,
	}
	if err := cfg.sim.Apply(&opts, os.Stderr); err != nil {
		return err
	}
	if cfg.loHz > 0 && cfg.hiHz > cfg.loHz {
		opts.Region = analogdft.Region{LoHz: cfg.loHz, HiHz: cfg.hiHz}
	}

	if cfg.initial {
		row, err := analogdft.EvaluateCircuit(bench.Circuit, faults, opts)
		if err != nil {
			return err
		}
		fmt.Printf("circuit %s  Ω_reference = %s  ε = %.0f%%\n\n", bench.Circuit.Name, row.Region, 100*cfg.eps)
		fmt.Printf("%-8s %-11s %-9s %s\n", "fault", "detectable", "ω-det", "max |ΔT/T|")
		for _, e := range row.Evals {
			status := fmt.Sprintf("%.3g", e.MaxDev)
			if e.Err != nil {
				status = "error: " + e.Err.Error()
			}
			fmt.Printf("%-8s %-11v %7.1f%%  %s\n", e.Fault.ID, e.Detectable, e.OmegaDet, status)
		}
		fmt.Printf("\n%s\n", report.CoverageSummary(bench.Circuit.Name, row.FaultCoverage(), row.AvgOmegaDet(), 1))
		if cfg.sim.Stats {
			fmt.Printf("simulation: %s\n", row.Stats)
		}
		if n := row.ErrCount(); n > 0 && cfg.strict {
			return fmt.Errorf("%w: %d of %d evaluations", errCellsFailed, n, len(row.Evals))
		}
		return nil
	}

	m, err := analogdft.ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		return err
	}
	mx, err := analogdft.BuildMatrix(m, faults, opts)
	if err != nil {
		return err
	}
	fmt.Printf("circuit %s  Ω_reference = %s  ε = %.0f%%  faults = %d  configurations = %d\n\n",
		bench.Circuit.Name, mx.Region, 100*cfg.eps, mx.NumFaults(), mx.NumConfigs())
	if cfg.markdown {
		if err := report.MatrixMarkdown(os.Stdout, mx); err != nil {
			return err
		}
		fmt.Println()
		if err := report.OmegaMarkdown(os.Stdout, mx); err != nil {
			return err
		}
		fmt.Println()
	} else {
		fmt.Println(report.DetMatrixTable(mx))
		fmt.Println(report.OmegaTable(mx, nil))
	}
	fmt.Println(report.CoverageSummary("all configurations", mx.FaultCoverage(), mx.AvgBestOmega(nil), mx.NumConfigs()))
	if cfg.sim.Stats {
		fmt.Printf("simulation: %s\n", mx.Stats)
	}
	if err := reportCellErrors(os.Stdout, mx, cfg.strict); err != nil {
		return err
	}
	if cfg.csvPath != "" {
		f, err := os.Create(cfg.csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.MatrixCSV(f, mx); err != nil {
			return err
		}
		return f.Close()
	}
	return nil
}

// reportCellErrors lists every failed matrix cell (configuration, fault,
// cause) and, in strict mode, turns a non-empty list into an error.
func reportCellErrors(w io.Writer, mx *analogdft.Matrix, strict bool) error {
	if len(mx.CellErrors) == 0 {
		return nil
	}
	total := mx.NumConfigs() * mx.NumFaults()
	fmt.Fprintf(w, "%d of %d cells failed to simulate (recorded undetectable):\n", len(mx.CellErrors), total)
	for _, ce := range mx.CellErrors {
		fmt.Fprintf(w, "  %-5s %-8s %v\n", ce.Config.Label(), ce.Fault.ID, ce.Err)
	}
	if strict {
		return fmt.Errorf("%w: %d of %d cells", errCellsFailed, len(mx.CellErrors), total)
	}
	return nil
}
