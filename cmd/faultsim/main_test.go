package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"analogdft"
	"analogdft/internal/obs/cliobs"
)

// base returns the coarse-grid biquad configuration used across tests.
func base() config {
	return config{frac: 0.2, eps: 0.1, floor: 0.01, points: 31, loHz: 100, hiHz: 5600}
}

func TestRunInitialOnly(t *testing.T) {
	cfg := base()
	cfg.initial = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunMatrixWithCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "matrix.csv")
	cfg := base()
	cfg.csvPath = csv
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+7*8 {
		t.Fatalf("CSV lines = %d, want 57", len(lines))
	}
	if !strings.HasPrefix(lines[0], "config,") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunFromDeck(t *testing.T) {
	cfg := base()
	cfg.path = "../../testdata/biquad.cir"
	cfg.points = 21
	cfg.initial = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingDeck(t *testing.T) {
	cfg := config{path: "/no/such.cir", frac: 0.2, eps: 0.1, floor: 0.01, points: 21, initial: true}
	if err := run(cfg); err == nil {
		t.Fatal("missing deck accepted")
	}
}

func TestLoadBenchAutoChain(t *testing.T) {
	b, err := analogdft.LoadBench("../../testdata/biquad.cir")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Chain) != 3 {
		t.Fatalf("chain = %v", b.Chain)
	}
}

func TestRunMarkdown(t *testing.T) {
	cfg := base()
	cfg.markdown = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunStrictCleanDeck(t *testing.T) {
	// A healthy deck has no failed cells; -strict must not change the
	// exit status.
	cfg := base()
	cfg.strict = true
	cfg.sim.Stats = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, p := range []string{"", "degrade", "failfast", "retry"} {
		cfg := base()
		cfg.sim.OnError = p
		if err := run(cfg); err != nil {
			t.Fatalf("policy %q: %v", p, err)
		}
	}
}

func TestRunRejectsUnknownPolicy(t *testing.T) {
	cfg := base()
	cfg.sim.OnError = "bogus"
	if err := run(cfg); err == nil || !strings.Contains(err.Error(), "unknown error policy") {
		t.Fatalf("err = %v", err)
	}
}

// brokenMatrix hand-builds a matrix with two failed cells so the error
// listing can be checked without constructing a failing circuit.
func brokenMatrix() *analogdft.Matrix {
	bench := analogdft.PaperBiquad()
	faults := analogdft.DeviationFaults(bench.Circuit, 0.2)
	mx := &analogdft.Matrix{
		Faults: faults,
		Configs: []analogdft.Configuration{
			{Index: 0, N: 3}, {Index: 1, N: 3},
		},
		Det:   [][]bool{make([]bool, len(faults)), make([]bool, len(faults))},
		Omega: [][]float64{make([]float64, len(faults)), make([]float64, len(faults))},
	}
	mx.CellErrors = []analogdft.CellError{
		{Config: mx.Configs[0], FaultIndex: 1, Fault: faults[1], Err: errors.New("boom")},
		{Config: mx.Configs[1], FaultIndex: 3, Fault: faults[3], Err: errors.New("bang")},
	}
	return mx
}

func TestReportCellErrorsListing(t *testing.T) {
	mx := brokenMatrix()
	var sb strings.Builder
	if err := reportCellErrors(&sb, mx, false); err != nil {
		t.Fatalf("non-strict reporting errored: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "2 of 16 cells failed") {
		t.Fatalf("missing count line:\n%s", out)
	}
	for _, want := range []string{mx.CellErrors[0].Fault.ID, mx.CellErrors[1].Fault.ID, "boom", "bang"} {
		if !strings.Contains(out, want) {
			t.Fatalf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestReportCellErrorsStrict(t *testing.T) {
	mx := brokenMatrix()
	var sb strings.Builder
	err := reportCellErrors(&sb, mx, true)
	if !errors.Is(err, errCellsFailed) {
		t.Fatalf("strict err = %v, want errCellsFailed", err)
	}
	// Clean matrix: strict mode is quiet and nil.
	mx.CellErrors = nil
	sb.Reset()
	if err := reportCellErrors(&sb, mx, true); err != nil || sb.Len() != 0 {
		t.Fatalf("clean strict: err=%v out=%q", err, sb.String())
	}
}

// TestStrictLintRejectsFloatingNodeDeck is the preflight acceptance test:
// a deck with a floating node fails up front with a structured NLxxx
// diagnostic under -strict-lint, instead of surfacing later as an opaque
// singular-matrix error from the MNA solver.
func TestStrictLintRejectsFloatingNodeDeck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "floating.cir")
	deck := "R1 in a 1k\nR2 a 0 1k\nR3 a x 1k\nOA1 0 a b\nR4 b a 1k\n.input in\n.output b\n"
	if err := os.WriteFile(path, []byte(deck), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := base()
	cfg.path = path
	cfg.lint.Strict = true
	err := run(cfg)
	if err == nil || !strings.Contains(err.Error(), "netlist preflight") {
		t.Fatalf("strict-lint run error = %v, want a netlist preflight failure", err)
	}

	// The diagnostic stream names the floating node with its stable code.
	bench, err := analogdft.LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	var diag strings.Builder
	lintErr := (&cliobs.LintFlags{Strict: true}).Preflight("faultsim", bench, &diag)
	if lintErr == nil {
		t.Fatal("strict preflight accepted a floating-node deck")
	}
	if out := diag.String(); !strings.Contains(out, "NL002") || !strings.Contains(out, "x") {
		t.Errorf("preflight output missing NL002/node x:\n%s", out)
	}

	// Without -strict-lint the run warns but proceeds past the preflight;
	// the engine's degrade policy absorbs the singular cells.
	cfg.lint.Strict = false
	if err := run(cfg); err != nil && strings.Contains(err.Error(), "netlist preflight") {
		t.Fatalf("non-strict run still failed the preflight: %v", err)
	}
}
