package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunInitialOnly(t *testing.T) {
	if err := run("", 0.2, 0.1, 0.01, 31, 100, 5600, true, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunMatrixWithCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "matrix.csv")
	if err := run("", 0.2, 0.1, 0.01, 31, 100, 5600, false, csv, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+7*8 {
		t.Fatalf("CSV lines = %d, want 57", len(lines))
	}
	if !strings.HasPrefix(lines[0], "config,") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunFromDeck(t *testing.T) {
	if err := run("../../testdata/biquad.cir", 0.2, 0.1, 0.01, 21, 100, 5600, true, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingDeck(t *testing.T) {
	if err := run("/no/such.cir", 0.2, 0.1, 0.01, 21, 0, 0, true, "", false); err == nil {
		t.Fatal("missing deck accepted")
	}
}

func TestLoadBenchAutoChain(t *testing.T) {
	b, err := loadBench("../../testdata/biquad.cir")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Chain) != 3 {
		t.Fatalf("chain = %v", b.Chain)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run("", 0.2, 0.1, 0.01, 31, 100, 5600, false, "", true); err != nil {
		t.Fatal(err)
	}
}
