package main

import (
	"strings"
	"testing"
)

func TestLoadBenchDefault(t *testing.T) {
	b, err := loadBench("")
	if err != nil {
		t.Fatal(err)
	}
	if b.Circuit.Name != "paper-biquad" || len(b.Chain) != 3 {
		t.Fatalf("default bench = %v chain %v", b.Circuit.Name, b.Chain)
	}
}

func TestLoadBenchFromDeck(t *testing.T) {
	b, err := loadBench("../../testdata/biquad.cir")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Chain) != 3 || b.Chain[0] != "OA1" {
		t.Fatalf("chain = %v", b.Chain)
	}
	if err := b.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadBenchMissingFile(t *testing.T) {
	if _, err := loadBench("/nonexistent/deck.cir"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunRejectsUnknownCost(t *testing.T) {
	err := run("", 0.2, 0.1, 0.01, 31, 100, 5600, "bogus", 1, 1, false)
	if err == nil || !strings.Contains(err.Error(), "unknown cost") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunCostVariants(t *testing.T) {
	// Exercise all three cost paths end to end on a coarse grid (stdout
	// noise is acceptable in tests).
	for _, cost := range []string{"configs", "opamps", "weighted"} {
		if err := run("", 0.2, 0.1, 0.01, 31, 100, 5600, cost, 1, 1, false); err != nil {
			t.Fatalf("cost %s: %v", cost, err)
		}
	}
}

func TestRunBipolar(t *testing.T) {
	if err := run("", 0.2, 0.1, 0.01, 31, 100, 5600, "configs", 1, 1, true); err != nil {
		t.Fatal(err)
	}
}
