package main

import (
	"errors"
	"strings"
	"testing"

	"analogdft"
)

// base returns the coarse-grid biquad configuration used across tests.
func base() config {
	return config{frac: 0.2, eps: 0.1, floor: 0.01, points: 31, loHz: 100, hiHz: 5600, cost: "configs", wCfg: 1, wOp: 1}
}

func TestLoadBenchDefault(t *testing.T) {
	b, err := analogdft.LoadBench("")
	if err != nil {
		t.Fatal(err)
	}
	if b.Circuit.Name != "paper-biquad" || len(b.Chain) != 3 {
		t.Fatalf("default bench = %v chain %v", b.Circuit.Name, b.Chain)
	}
}

func TestLoadBenchFromDeck(t *testing.T) {
	b, err := analogdft.LoadBench("../../testdata/biquad.cir")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Chain) != 3 || b.Chain[0] != "OA1" {
		t.Fatalf("chain = %v", b.Chain)
	}
	if err := b.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadBenchMissingFile(t *testing.T) {
	if _, err := analogdft.LoadBench("/nonexistent/deck.cir"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunRejectsUnknownCost(t *testing.T) {
	cfg := base()
	cfg.cost = "bogus"
	err := run(cfg)
	if err == nil || !strings.Contains(err.Error(), "unknown cost") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunCostVariants(t *testing.T) {
	// Exercise all three cost paths end to end on a coarse grid (stdout
	// noise is acceptable in tests).
	for _, cost := range []string{"configs", "opamps", "weighted"} {
		cfg := base()
		cfg.cost = cost
		if err := run(cfg); err != nil {
			t.Fatalf("cost %s: %v", cost, err)
		}
	}
}

func TestRunBipolar(t *testing.T) {
	cfg := base()
	cfg.bipolar = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimStats(t *testing.T) {
	cfg := base()
	cfg.sim.Stats = true
	cfg.sim.Workers = 2
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWarnCellErrors(t *testing.T) {
	bench := analogdft.PaperBiquad()
	faults := analogdft.DeviationFaults(bench.Circuit, 0.2)
	mx := &analogdft.Matrix{
		Faults:  faults,
		Configs: []analogdft.Configuration{{Index: 0, N: 3}},
		Det:     [][]bool{make([]bool, len(faults))},
		Omega:   [][]float64{make([]float64, len(faults))},
	}
	var sb strings.Builder
	warnCellErrors(&sb, "full matrix", mx)
	if sb.Len() != 0 {
		t.Fatalf("clean matrix warned: %q", sb.String())
	}
	mx.CellErrors = []analogdft.CellError{
		{Config: mx.Configs[0], FaultIndex: 2, Fault: faults[2], Err: errors.New("boom")},
	}
	warnCellErrors(&sb, "full matrix", mx)
	out := sb.String()
	if !strings.Contains(out, "1 failed cells") || !strings.Contains(out, faults[2].ID) || !strings.Contains(out, "boom") {
		t.Fatalf("warning missing detail:\n%s", out)
	}
}
