// Command dftopt runs the full multi-configuration DFT optimization on a
// netlist deck:
//
//	dftopt [flags] circuit.cir
//
// The deck must declare .input and .output; .chain selects the
// configurable opamps (default: every opamp in netlist order). Flags
// select the fault size, tolerance, reference region and the 2nd-order
// cost function. With no deck argument the built-in paper biquad is used.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"analogdft"
	"analogdft/internal/obs/cliobs"
)

// config carries the parsed command line.
type config struct {
	path       string
	frac       float64
	eps        float64
	floor      float64
	points     int
	loHz, hiHz float64
	cost       string
	wCfg, wOp  float64
	bipolar    bool
	sim        cliobs.SimFlags
	lint       cliobs.LintFlags
}

func main() {
	var cfg config
	flag.Float64Var(&cfg.frac, "frac", 0.20, "deviation fault size (fraction)")
	flag.Float64Var(&cfg.eps, "eps", 0.10, "detection tolerance ε (fraction)")
	flag.Float64Var(&cfg.floor, "floor", 1e-4, "measurement floor relative to the response peak")
	flag.IntVar(&cfg.points, "points", 241, "frequency grid points over Ω_reference")
	flag.Float64Var(&cfg.loHz, "lo", 0, "pin Ω_reference low edge (Hz); 0 = automatic")
	flag.Float64Var(&cfg.hiHz, "hi", 0, "pin Ω_reference high edge (Hz); 0 = automatic")
	flag.StringVar(&cfg.cost, "cost", "configs", `2nd-order cost: "configs", "opamps" or "weighted"`)
	flag.Float64Var(&cfg.wCfg, "wconfigs", 1, "configuration weight for -cost=weighted")
	flag.Float64Var(&cfg.wOp, "wopamps", 1, "opamp weight for -cost=weighted")
	flag.BoolVar(&cfg.bipolar, "bipolar", false, "use ± deviation faults instead of + only")
	cfg.sim.Register(flag.CommandLine)
	cfg.lint.Register(flag.CommandLine)
	obsf := cliobs.RegisterObs(flag.CommandLine)
	flag.Parse()
	cfg.path = flag.Arg(0)

	sess, err := obsf.Start("dftopt", nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dftopt:", err)
		os.Exit(1)
	}
	sess.Report.SetInput("deck", cfg.path)
	runErr := run(cfg)
	if err := sess.Finish(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "dftopt:", runErr)
		os.Exit(1)
	}
}

func run(cfg config) error {
	bench, err := analogdft.LoadBench(cfg.path)
	if err != nil {
		return err
	}
	if len(bench.Chain) == 0 {
		return fmt.Errorf("deck %s has no opamps to configure", cfg.path)
	}
	if err := cfg.lint.Preflight("dftopt", bench, os.Stderr); err != nil {
		return err
	}
	opts := analogdft.Options{Eps: cfg.eps, MeasFloor: cfg.floor, Points: cfg.points}
	if err := cfg.sim.Apply(&opts, os.Stderr); err != nil {
		return err
	}
	if cfg.loHz > 0 && cfg.hiHz > cfg.loHz {
		opts.Region = analogdft.Region{LoHz: cfg.loHz, HiHz: cfg.hiHz}
	}
	exp, err := analogdft.Run(bench, cfg.frac, opts)
	if err != nil {
		return err
	}
	if cfg.bipolar {
		// Re-run the matrix with bipolar faults (Run uses single-sided).
		exp.Faults = analogdft.BipolarDeviationFaults(bench.Circuit, cfg.frac)
		if exp.Matrix, err = analogdft.BuildMatrix(exp.Modified, exp.Faults, opts); err != nil {
			return err
		}
	}
	// The optimizer consumes d[i][j] as ground truth; a matrix with error
	// placeholders can understate coverage and mislead Petrick's method,
	// so failed cells are never silent.
	warnCellErrors(os.Stderr, "full matrix", exp.Matrix)
	if exp.PartialMatrix != nil {
		warnCellErrors(os.Stderr, "partial matrix", exp.PartialMatrix)
	}

	var costFn analogdft.CostFunction
	switch cfg.cost {
	case "configs":
		costFn = analogdft.ConfigCountCost
	case "opamps":
		costFn = analogdft.OpampCountCost
	case "weighted":
		costFn = analogdft.WeightedCost(cfg.wCfg, cfg.wOp)
	default:
		return fmt.Errorf("unknown cost %q", cfg.cost)
	}
	if exp.ConfigOpt, err = analogdft.Optimize(exp.Matrix, bench.Chain, costFn); err != nil {
		return err
	}
	if err := exp.Report(os.Stdout); err != nil {
		return err
	}
	if cfg.sim.Stats {
		fmt.Printf("\nfault simulation: %s\n", exp.Matrix.Stats)
		if exp.PartialMatrix != nil {
			fmt.Printf("partial matrix:   %s\n", exp.PartialMatrix.Stats)
		}
	}
	return reportProgram(exp, bench)
}

// warnCellErrors lists a matrix's failed cells on w; the optimization
// results downstream of such a matrix must not be trusted blindly.
func warnCellErrors(w io.Writer, label string, mx *analogdft.Matrix) {
	if len(mx.CellErrors) == 0 {
		return
	}
	fmt.Fprintf(w, "dftopt: warning: %s has %d failed cells (recorded undetectable); coverage may be understated:\n",
		label, len(mx.CellErrors))
	for _, ce := range mx.CellErrors {
		fmt.Fprintf(w, "  %-5s %-8s %v\n", ce.Config.Label(), ce.Fault.ID, ce.Err)
	}
}

// reportProgram appends the concrete test program for the optimized set:
// per-configuration test frequencies, the minimum-toggle application
// order and the BIST hardware budget.
func reportProgram(exp *analogdft.Experiment, bench *analogdft.Bench) error {
	var cfgIdxs []int
	for _, r := range exp.ConfigOpt.Best.Rows {
		cfgIdxs = append(cfgIdxs, exp.Matrix.Configs[r].Index)
	}
	plans, err := analogdft.PlanConfigurationTests(exp.Modified, cfgIdxs, exp.Faults, exp.Matrix.Region,
		analogdft.TestGenOptions{Eps: exp.Opts.Eps, MeasFloor: exp.Opts.MeasFloor, Points: exp.Opts.Points})
	if err != nil {
		return err
	}
	var items []analogdft.TestItem
	totalFreqs := 0
	for i, r := range exp.ConfigOpt.Best.Rows {
		items = append(items, analogdft.TestItem{Config: exp.Matrix.Configs[r], Freqs: plans[i].Freqs})
		totalFreqs += len(plans[i].Freqs)
	}
	start := analogdft.Configuration{Index: 0, N: exp.Modified.N()}
	prog, err := analogdft.ScheduleTests(items, start)
	if err != nil {
		return err
	}
	fmt.Println("\ntest program for the optimal set:")
	for _, step := range prog.Steps {
		fmt.Printf("  %s (%s): %d toggles in, frequencies %v\n",
			step.Config.Label(), step.Config.Vector(), step.TogglesIn, step.Freqs)
	}
	fmt.Printf("selection-line toggles: %d (naive order: %d)\n",
		prog.TotalToggles(), analogdft.NaiveToggleCount(items, start))
	est, err := analogdft.EstimateBIST(analogdft.DefaultBISTModel, exp.Modified.N(),
		len(items), prog.TotalMeasurements())
	if err != nil {
		return err
	}
	fmt.Printf("BIST budget: %.0f gate equivalents (%d config ROM bits, %d freq words, %d windows)\n",
		est.GateEquivalents, est.ConfigROMBits, est.FreqROMBits, est.Windows)
	return nil
}
