// Command dftopt runs the full multi-configuration DFT optimization on a
// netlist deck:
//
//	dftopt [flags] circuit.cir
//
// The deck must declare .input and .output; .chain selects the
// configurable opamps (default: every opamp in netlist order). Flags
// select the fault size, tolerance, reference region and the 2nd-order
// cost function. With no deck argument the built-in paper biquad is used.
package main

import (
	"flag"
	"fmt"
	"os"

	"analogdft"
	"analogdft/internal/spice"
)

func main() {
	var (
		frac    = flag.Float64("frac", 0.20, "deviation fault size (fraction)")
		eps     = flag.Float64("eps", 0.10, "detection tolerance ε (fraction)")
		floor   = flag.Float64("floor", 1e-4, "measurement floor relative to the response peak")
		points  = flag.Int("points", 241, "frequency grid points over Ω_reference")
		loHz    = flag.Float64("lo", 0, "pin Ω_reference low edge (Hz); 0 = automatic")
		hiHz    = flag.Float64("hi", 0, "pin Ω_reference high edge (Hz); 0 = automatic")
		cost    = flag.String("cost", "configs", `2nd-order cost: "configs", "opamps" or "weighted"`)
		wCfg    = flag.Float64("wconfigs", 1, "configuration weight for -cost=weighted")
		wOp     = flag.Float64("wopamps", 1, "opamp weight for -cost=weighted")
		bipolar = flag.Bool("bipolar", false, "use ± deviation faults instead of + only")
	)
	flag.Parse()

	if err := run(flag.Arg(0), *frac, *eps, *floor, *points, *loHz, *hiHz, *cost, *wCfg, *wOp, *bipolar); err != nil {
		fmt.Fprintln(os.Stderr, "dftopt:", err)
		os.Exit(1)
	}
}

func run(path string, frac, eps, floor float64, points int, loHz, hiHz float64, cost string, wCfg, wOp float64, bipolar bool) error {
	bench, err := loadBench(path)
	if err != nil {
		return err
	}
	opts := analogdft.Options{Eps: eps, MeasFloor: floor, Points: points}
	if loHz > 0 && hiHz > loHz {
		opts.Region = analogdft.Region{LoHz: loHz, HiHz: hiHz}
	}
	exp, err := analogdft.Run(bench, frac, opts)
	if err != nil {
		return err
	}
	if bipolar {
		// Re-run the matrix with bipolar faults (Run uses single-sided).
		exp.Faults = analogdft.BipolarDeviationFaults(bench.Circuit, frac)
		if exp.Matrix, err = analogdft.BuildMatrix(exp.Modified, exp.Faults, opts); err != nil {
			return err
		}
	}

	var costFn analogdft.CostFunction
	switch cost {
	case "configs":
		costFn = analogdft.ConfigCountCost
	case "opamps":
		costFn = analogdft.OpampCountCost
	case "weighted":
		costFn = analogdft.WeightedCost(wCfg, wOp)
	default:
		return fmt.Errorf("unknown cost %q", cost)
	}
	if exp.ConfigOpt, err = analogdft.Optimize(exp.Matrix, bench.Chain, costFn); err != nil {
		return err
	}
	if err := exp.Report(os.Stdout); err != nil {
		return err
	}
	return reportProgram(exp, bench)
}

// reportProgram appends the concrete test program for the optimized set:
// per-configuration test frequencies, the minimum-toggle application
// order and the BIST hardware budget.
func reportProgram(exp *analogdft.Experiment, bench *analogdft.Bench) error {
	var cfgIdxs []int
	for _, r := range exp.ConfigOpt.Best.Rows {
		cfgIdxs = append(cfgIdxs, exp.Matrix.Configs[r].Index)
	}
	plans, err := analogdft.PlanConfigurationTests(exp.Modified, cfgIdxs, exp.Faults, exp.Matrix.Region,
		analogdft.TestGenOptions{Eps: exp.Opts.Eps, MeasFloor: exp.Opts.MeasFloor, Points: exp.Opts.Points})
	if err != nil {
		return err
	}
	var items []analogdft.TestItem
	totalFreqs := 0
	for i, r := range exp.ConfigOpt.Best.Rows {
		items = append(items, analogdft.TestItem{Config: exp.Matrix.Configs[r], Freqs: plans[i].Freqs})
		totalFreqs += len(plans[i].Freqs)
	}
	start := analogdft.Configuration{Index: 0, N: exp.Modified.N()}
	prog, err := analogdft.ScheduleTests(items, start)
	if err != nil {
		return err
	}
	fmt.Println("\ntest program for the optimal set:")
	for _, step := range prog.Steps {
		fmt.Printf("  %s (%s): %d toggles in, frequencies %v\n",
			step.Config.Label(), step.Config.Vector(), step.TogglesIn, step.Freqs)
	}
	fmt.Printf("selection-line toggles: %d (naive order: %d)\n",
		prog.TotalToggles(), analogdft.NaiveToggleCount(items, start))
	est, err := analogdft.EstimateBIST(analogdft.DefaultBISTModel, exp.Modified.N(),
		len(items), prog.TotalMeasurements())
	if err != nil {
		return err
	}
	fmt.Printf("BIST budget: %.0f gate equivalents (%d config ROM bits, %d freq words, %d windows)\n",
		est.GateEquivalents, est.ConfigROMBits, est.FreqROMBits, est.Windows)
	return nil
}

func loadBench(path string) (*analogdft.Bench, error) {
	if path == "" {
		return analogdft.PaperBiquad(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	deck, err := spice.Parse(f)
	if err != nil {
		return nil, err
	}
	chain := deck.Chain
	if len(chain) == 0 {
		for _, op := range deck.Circuit.Opamps() {
			chain = append(chain, op.Name())
		}
	}
	if len(chain) == 0 {
		return nil, fmt.Errorf("deck %s has no opamps to configure", path)
	}
	return &analogdft.Bench{
		Circuit:     deck.Circuit,
		Chain:       chain,
		Description: "netlist " + path,
	}, nil
}
