package main

import (
	"fmt"
	"os"

	"analogdft"
)

// runLibrary prints the §5 library study.
func runLibrary() error {
	fmt.Println("library study: the paper's flow on every benchmark circuit")
	rows := analogdft.RunLibraryStudy()
	return analogdft.WriteLibraryStudy(os.Stdout, rows)
}
