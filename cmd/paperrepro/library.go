package main

import (
	"fmt"
	"os"

	"analogdft"
	"analogdft/internal/obs/cliobs"
)

// runLibrary prints the §5 library study, preflighting every bench.
func runLibrary(lintf *cliobs.LintFlags) error {
	for _, bench := range analogdft.CircuitLibrary() {
		if err := lintf.Preflight("paperrepro", bench, os.Stderr); err != nil {
			return err
		}
	}
	fmt.Println("library study: the paper's flow on every benchmark circuit")
	rows := analogdft.RunLibraryStudy()
	return analogdft.WriteLibraryStudy(os.Stdout, rows)
}
