package main

import (
	"analogdft/internal/obs/cliobs"

	"os"
	"path/filepath"
	"testing"
)

func TestRunPublishedTrack(t *testing.T) {
	if err := run(false, true, "", false, "", &cliobs.LintFlags{}, &cliobs.SimFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBothTracksWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation track is slow")
	}
	dir := t.TempDir()
	if err := run(false, false, dir, true, dir+"/summary.json", &cliobs.LintFlags{}, &cliobs.SimFlags{}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"matrix_sim.csv", "matrix_sim_partial.csv", "matrix_published.csv", "summary.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestDumpCSVCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "deeper")
	if err := run(false, true, dir, false, "", &cliobs.LintFlags{}, &cliobs.SimFlags{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "matrix_published.csv")); err != nil {
		t.Fatal(err)
	}
}
