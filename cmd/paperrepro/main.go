// Command paperrepro regenerates every table and figure of the paper:
//
//	paperrepro            both tracks (simulation + published data)
//	paperrepro -sim       end-to-end simulation on the built-in biquad only
//	paperrepro -published replay of §4 on the paper's printed matrices only
//	paperrepro -csv out/  additionally dump matrices as CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"analogdft"
	"analogdft/internal/obs/cliobs"
	"analogdft/internal/report"
)

func main() {
	simOnly := flag.Bool("sim", false, "run only the end-to-end simulation track")
	pubOnly := flag.Bool("published", false, "run only the published-data track")
	csvDir := flag.String("csv", "", "directory to write matrix CSV files into")
	characterize := flag.Bool("characterize", false, "fit and print each configuration's transfer function (order, f0, Q)")
	library := flag.Bool("library", false, "run the §5 study across the whole benchmark circuit library")
	jsonPath := flag.String("json", "", "write the simulation-track experiment summary as JSON to this file")
	lintf := cliobs.RegisterLint(flag.CommandLine)
	obsf := cliobs.RegisterObs(flag.CommandLine)
	simf := cliobs.RegisterSim(flag.CommandLine)
	flag.Parse()

	sess, err := obsf.Start("paperrepro", nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
	var runErr error
	if *library {
		runErr = runLibrary(lintf)
	} else {
		runErr = run(*simOnly, *pubOnly, *csvDir, *characterize, *jsonPath, lintf, simf)
	}
	if err := sess.Finish(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", runErr)
		os.Exit(1)
	}
}

func run(simOnly, pubOnly bool, csvDir string, characterize bool, jsonPath string, lintf *cliobs.LintFlags, simf *cliobs.SimFlags) error {
	runSim := !pubOnly
	runPub := !simOnly

	if runSim {
		if err := lintf.Preflight("paperrepro", analogdft.PaperBiquad(), os.Stderr); err != nil {
			return err
		}
		opts := analogdft.PaperOptions()
		if err := simf.Apply(&opts, os.Stderr); err != nil {
			return err
		}
		exp, err := analogdft.Run(analogdft.PaperBiquad(), analogdft.PaperFaultFraction, opts)
		if err != nil {
			return err
		}
		if simf.Stats {
			fmt.Fprintf(os.Stderr, "paperrepro: matrix simulation: %s\n", exp.Matrix.Stats)
		}
		warnCellErrors("simulation matrix", exp.Matrix)
		if exp.PartialMatrix != nil {
			warnCellErrors("partial matrix", exp.PartialMatrix)
		}
		if err := exp.Report(os.Stdout); err != nil {
			return err
		}
		if characterize {
			chars, err := exp.Characterize(analogdft.Region{LoHz: 100, HiHz: 1e6}, 81, 4, 1e-3)
			if err != nil {
				return err
			}
			fmt.Println("\nper-configuration characterization (fitted models):")
			if err := analogdft.WriteCharacterization(os.Stdout, chars); err != nil {
				return err
			}
		}
		if jsonPath != "" {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			if err := exp.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if csvDir != "" {
			if err := dumpCSV(csvDir, "matrix_sim.csv", exp.Matrix); err != nil {
				return err
			}
			if exp.PartialMatrix != nil {
				if err := dumpCSV(csvDir, "matrix_sim_partial.csv", exp.PartialMatrix); err != nil {
					return err
				}
			}
		}
		fmt.Println()
	}
	if runPub {
		pub, err := analogdft.RunPublished()
		if err != nil {
			return err
		}
		if err := pub.Report(os.Stdout); err != nil {
			return err
		}
		if csvDir != "" {
			if err := dumpCSV(csvDir, "matrix_published.csv", pub.Matrix); err != nil {
				return err
			}
		}
	}
	return nil
}

// warnCellErrors flags failed matrix cells on stderr: the reproduced
// tables treat such cells as undetectable, which skews the comparison
// against the published data.
func warnCellErrors(label string, mx *analogdft.Matrix) {
	if len(mx.CellErrors) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "paperrepro: warning: %s has %d failed cells (treated as undetectable):\n",
		label, len(mx.CellErrors))
	for _, ce := range mx.CellErrors {
		fmt.Fprintf(os.Stderr, "  %-5s %-8s %v\n", ce.Config.Label(), ce.Fault.ID, ce.Err)
	}
}

func dumpCSV(dir, name string, mx *analogdft.Matrix) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.MatrixCSV(f, mx); err != nil {
		return err
	}
	return f.Close()
}
