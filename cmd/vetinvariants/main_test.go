package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tempRepo builds a minimal analyzable tree: one internal package with a
// seeded VI001 violation (a direct time.Now read).
func tempRepo(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "x")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package x

import "time"

func Stamp() time.Time { return time.Now() }
`
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListCatalog(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, want := range []string{"VI001", "VI005", "VI006", "VI010", "single-clock-source", "joined-goroutines"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestUnknownCodeRejectedBeforeLoad(t *testing.T) {
	// The bogus root would fail to load; the code check must fire first.
	code, _, stderr := runCLI(t, "-codes", "VI999", "/nonexistent")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "VI999") {
		t.Errorf("stderr does not name the unknown code: %q", stderr)
	}
}

func TestMissingRootExitsTwo(t *testing.T) {
	code, _, _ := runCLI(t, "/nonexistent")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestTooManyArgsExitsTwo(t *testing.T) {
	code, _, _ := runCLI(t, "a", "b")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestFindingsExitOne(t *testing.T) {
	root := tempRepo(t)
	code, out, stderr := runCLI(t, root)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stdout %q stderr %q)", code, out, stderr)
	}
	if !strings.Contains(out, "VI001") || !strings.Contains(out, "internal/x/x.go") {
		t.Errorf("text output missing the finding: %q", out)
	}
	if !strings.Contains(stderr, "1 invariant violation(s)") {
		t.Errorf("stderr missing the violation count: %q", stderr)
	}
}

func TestCodesFilterSkipsOtherPasses(t *testing.T) {
	root := tempRepo(t)
	// The seeded violation is VI001; a VI002-only run must come back clean.
	code, out, _ := runCLI(t, "-codes", "VI002", root)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stdout %q)", code, out)
	}
	if !strings.Contains(out, "clean") {
		t.Errorf("expected clean verdict, got %q", out)
	}
}

func TestJSONReportToFile(t *testing.T) {
	root := tempRepo(t)
	path := filepath.Join(t.TempDir(), "report.json")
	code, out, stderr := runCLI(t, "-json", "-o", path, root)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if out != "" {
		t.Errorf("stdout should be empty with -o, got %q", out)
	}
	// With the report routed to a file, findings are echoed to stderr for
	// the CI log.
	if !strings.Contains(stderr, "VI001") {
		t.Errorf("stderr echo missing the finding: %q", stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Diagnostics []struct {
			Code string `json:"code"`
			File string `json:"file"`
			Line int    `json:"line"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Code != "VI001" || rep.Diagnostics[0].Line == 0 {
		t.Errorf("unexpected diagnostics: %+v", rep.Diagnostics)
	}
}

func TestBaselineGrandfathersFindings(t *testing.T) {
	root := tempRepo(t)
	baseline := filepath.Join(t.TempDir(), "baseline.json")

	code, _, stderr := runCLI(t, "-write-baseline", baseline, root)
	if code != 0 {
		t.Fatalf("-write-baseline exit %d, want 0 (stderr %q)", code, stderr)
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatal(err)
	}

	code, out, _ := runCLI(t, "-baseline", baseline, root)
	if code != 0 {
		t.Fatalf("baselined run exit %d, want 0 (stdout %q)", code, out)
	}
	if !strings.Contains(out, "suppressed by baseline") {
		t.Errorf("verdict does not mention suppression: %q", out)
	}

	// Fix the violation: the line-pinned baseline entry goes stale and is
	// reported for burn-down, still exiting 0.
	fixed := `package x

import "time"

func Stamp() time.Time { return time.Time{} }
`
	if err := os.WriteFile(filepath.Join(root, "internal", "x", "x.go"), []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runCLI(t, "-baseline", baseline, root)
	if code != 0 {
		t.Fatalf("stale-baseline run exit %d, want 0", code)
	}
	if !strings.Contains(out, "stale baseline entry") {
		t.Errorf("stale entry not reported: %q", out)
	}
}

func TestBadBaselineExitsTwo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"entries":[{"code":"VI999","file":"x.go"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, "-baseline", path, tempRepo(t))
	if code != 2 {
		t.Fatalf("exit %d, want 2 (stderr %q)", code, stderr)
	}
}
