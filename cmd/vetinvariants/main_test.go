package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a fake repo under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestRealRepoSatisfiesInvariants(t *testing.T) {
	findings, err := check(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func TestFlagsDirectClockReads(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/x/x.go": "package x\nimport \"time\"\nfunc f() time.Time { return time.Now() }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].msg, "obs.Now") {
		t.Fatalf("findings = %v", findings)
	}
	if findings[0].pos.Line != 3 {
		t.Errorf("line = %d, want 3", findings[0].pos.Line)
	}
}

func TestAliasedImportIsCaught(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/x/x.go": "package x\nimport clk \"time\"\nvar _ = clk.Since\nfunc f() { _ = clk.Since(clk.Time{}) }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
}

func TestObsPackageMayReadClock(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/obs/clock.go": "package obs\nimport \"time\"\nfunc Now() time.Time { return time.Now() }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("obs exempt, got %v", findings)
	}
}

func TestObsSubpackagesAreNotExempt(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/obs/cliobs/x.go": "package cliobs\nimport \"time\"\nfunc f() { _ = time.Now() }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
}

func TestFlagsStdoutPrints(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/x/x.go": "package x\nimport \"fmt\"\nfunc f() { fmt.Println(\"hi\"); fmt.Printf(\"%d\", 1); fmt.Print(2) }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("findings = %v", findings)
	}
}

func TestFprintAndTestFilesAllowed(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/x/x.go":      "package x\nimport (\"fmt\"; \"io\")\nfunc f(w io.Writer) { fmt.Fprintln(w, \"ok\") }\n",
		"internal/x/x_test.go": "package x\nimport (\"fmt\"; \"time\")\nfunc g() { fmt.Println(time.Now()) }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("findings = %v", findings)
	}
}

func TestShadowedIdentifierStillFlagged(t *testing.T) {
	// A local variable named fmt would shadow the import; the checker is
	// deliberately conservative and flags by local import name only, so a
	// file without the import is never flagged.
	root := writeTree(t, map[string]string{
		"internal/x/x.go": "package x\ntype fake struct{}\nfunc (fake) Println(...any) {}\nvar fmt fake\nfunc f() { fmt.Println() }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("non-import fmt flagged: %v", findings)
	}
}

func TestDetectCloneForbidden(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/detect/x.go": "package detect\ntype c struct{}\nfunc (c) Clone() c { return c{} }\nfunc f(v c) { _ = v.Clone() }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].msg, "must not clone") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestDetectNewSystemForbiddenAliasAware(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/detect/x.go": "package detect\nimport m \"analogdft/internal/mna\"\nfunc f() { m.NewSystem(nil) }\n",
		"internal/mna/mna.go":  "package mna\nfunc NewSystem(v any) any { return v }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].msg, "must not build MNA systems") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestCloneAndNewSystemAllowedOutsideDetect(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/analysis/x.go": "package analysis\nimport \"analogdft/internal/mna\"\ntype c struct{}\nfunc (c) Clone() c { return c{} }\nfunc f(v c) { _ = v.Clone(); mna.NewSystem(nil) }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("non-detect package flagged: %v", findings)
	}
}

func TestJobsBlockingEntryPointsForbidden(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/jobs/x.go": "package jobs\nimport \"analogdft\"\nfunc f() { analogdft.BuildMatrix(nil, nil, nil) }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].msg, "BuildMatrixContext") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestDftservedBlockingEntryPointsForbidden(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/x/x.go":        "package x\n",
		"cmd/dftserved/main.go":  "package main\nimport d \"analogdft/internal/detect\"\nfunc f() { d.EvaluateCircuit(nil, nil, d.Options{}) }\n",
		"cmd/dftserved/other.go": "package main\nimport \"fmt\"\nfunc g() { fmt.Println(\"serving\") }\n", // rule 2 does not apply to cmd/
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].msg, "detect.EvaluateCircuitContext") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestContextVariantsAllowedInJobLayer(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/jobs/x.go":    "package jobs\nimport \"analogdft\"\nfunc f() { analogdft.BuildMatrixContext(nil, nil, nil, nil) }\n",
		"cmd/dftserved/main.go": "package main\nimport \"analogdft\"\nfunc g() { analogdft.OptimizeContext(nil, nil, nil) }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("context variants flagged: %v", findings)
	}
}

func TestBlockingEntryPointsAllowedOutsideJobLayer(t *testing.T) {
	// Other commands and internal packages may still use the blocking API.
	root := writeTree(t, map[string]string{
		"internal/core/x.go": "package core\nimport \"analogdft/internal/detect\"\nfunc f() { detect.BuildMatrix(nil, nil, detect.Options{}) }\n",
		"cmd/dftopt/main.go": "package main\nimport \"analogdft\"\nfunc g() { analogdft.Optimize(nil, nil, nil) }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("non-job-layer blocking calls flagged: %v", findings)
	}
}

func TestAnalysisCloningFactorForbidden(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/analysis/x.go": "package analysis\nimport n \"analogdft/internal/numeric\"\nfunc f() { n.Factor(nil) }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].msg, "FactorInPlace") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestAnalysisInPlaceFactorAllowed(t *testing.T) {
	// FactorInPlace and workspace factoring are the sanctioned paths, and
	// numeric.Factor stays legal outside internal/analysis.
	root := writeTree(t, map[string]string{
		"internal/analysis/x.go": "package analysis\nimport \"analogdft/internal/numeric\"\nfunc f() { numeric.FactorInPlace(nil, nil) }\n",
		"internal/mna/x.go":      "package mna\nimport \"analogdft/internal/numeric\"\nfunc g() { numeric.Factor(nil) }\n",
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("sanctioned factor calls flagged: %v", findings)
	}
}

func TestMissingInternalDirErrors(t *testing.T) {
	if _, err := check(t.TempDir()); err == nil {
		t.Fatal("expected error for a tree without internal/")
	}
}
