// Command vetinvariants enforces repository-wide source invariants that
// go vet does not know about, using the type-aware multi-pass analyzer
// in internal/invariants:
//
//	vetinvariants [flags] [repo-root]
//
// Every pass has a stable VIxxx code (run `vetinvariants -list` for the
// catalog): the five original syntactic rules — single clock source, no
// stray prints, clone-free detect fan-out, cancellable job layer,
// in-place factorization — ported onto resolved go/types objects so
// import aliases and bound function values cannot evade them, plus the
// type-aware passes the string matcher could not express: TimingOn
// guards on clock-derived observations (VI006), context threading below
// the edge (VI007), bounded metric label sets (VI008), no locks held
// across blocking operations (VI009) and goroutine join tracking
// (VI010).
//
// Output is deterministic text (file:line:col) or JSON (-json). A
// committed baseline file (-baseline) grandfathers pre-existing findings
// so a new pass can land enforcing; stale baseline entries are reported
// for burn-down. Exit status: 0 clean, 1 findings, 2 usage or load
// error — the same contract as netlint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"analogdft/internal/invariants"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vetinvariants", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	codes := fs.String("codes", "", "comma-separated VIxxx codes to run (default: all passes)")
	baselinePath := fs.String("baseline", "", "baseline JSON allowlist; matching findings are suppressed")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	out := fs.String("o", "", "write the report to this file instead of stdout")
	list := fs.Bool("list", false, "print the pass catalog and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "vetinvariants: at most one root directory")
		return 2
	}
	root := fs.Arg(0)
	if root == "" {
		root = "."
	}

	if *list {
		for _, p := range invariants.Passes() {
			fmt.Fprintf(stdout, "%s %-24s %s\n\t%s\n\tscope: %s\n", p.Code, "["+p.Name+"]", p.Summary, p.Rationale, p.Scope)
		}
		return 0
	}

	opts := invariants.Options{}
	if *codes != "" {
		for _, c := range strings.Split(*codes, ",") {
			if c = strings.TrimSpace(c); c == "" {
				continue
			}
			// Reject unknown codes before the (slow) repo load.
			if !invariants.KnownCode(c) {
				fmt.Fprintf(stderr, "vetinvariants: unknown pass code %q (run -list for the catalog)\n", c)
				return 2
			}
			opts.Codes = append(opts.Codes, c)
		}
	}
	if *baselinePath != "" {
		b, err := invariants.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "vetinvariants:", err)
			return 2
		}
		opts.Baseline = b
	}

	loader := invariants.NewLoader()
	pkgs, err := loader.LoadRepo(root)
	if err != nil {
		fmt.Fprintln(stderr, "vetinvariants:", err)
		return 2
	}
	rep, err := invariants.Analyze(root, pkgs, opts)
	if err != nil {
		fmt.Fprintln(stderr, "vetinvariants:", err)
		return 2
	}

	if *writeBaseline != "" {
		b := invariants.FromFindings(rep.Diagnostics, "grandfathered by -write-baseline; burn down")
		if err := b.WriteFile(*writeBaseline); err != nil {
			fmt.Fprintln(stderr, "vetinvariants:", err)
			return 2
		}
		fmt.Fprintf(stderr, "vetinvariants: wrote %d baseline entr(ies) to %s\n", len(b.Entries), *writeBaseline)
		return 0
	}

	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "vetinvariants:", err)
			return 2
		}
		defer f.Close()
		dst = f
	}
	if *asJSON {
		err = rep.WriteJSON(dst)
	} else {
		err = rep.WriteText(dst)
	}
	if err != nil {
		fmt.Fprintln(stderr, "vetinvariants:", err)
		return 2
	}
	if !rep.Clean() {
		fmt.Fprintf(stderr, "vetinvariants: %d invariant violation(s)\n", len(rep.Diagnostics))
		// With the report routed to a file, keep the violations visible
		// in the terminal/CI log too.
		if *out != "" {
			_ = rep.WriteText(stderr)
		}
		return 1
	}
	return 0
}
