// Command vetinvariants enforces repository-wide source invariants that
// go vet does not know about:
//
//	vetinvariants [repo-root]
//
// Rule 1 — single clock source: internal packages never call time.Now or
// time.Since directly; every clock read goes through obs.Now/obs.Since so
// the timing gates in internal/obs stay the only place wall-clock time
// enters the system. Only the internal/obs package itself is exempt.
//
// Rule 2 — no stray prints: internal packages never call fmt.Print,
// fmt.Printf or fmt.Println. Library code reports through error values,
// the obs logger or an io.Writer handed in by the caller; the Fprint
// variants are therefore fine, as are the commands under cmd/.
//
// Rule 3 — allocation-flat fault simulation: internal/detect never clones
// circuits or builds MNA systems itself. Every cell evaluation goes
// through the analysis.Engine pool (or fault.Apply on the naive fallback
// path), so the hot fan-out stays clone-free; a direct .Clone(...) method
// call or an mna.NewSystem call inside internal/detect is a violation.
//
// All rules skip _test.go files. The checker is import-alias aware and
// uses only the standard library (go/parser + go/ast), so it runs in CI
// without fetching anything. Findings print as file:line:col and make the
// command exit 1.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// finding is one invariant violation.
type finding struct {
	pos token.Position
	msg string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", f.pos.Filename, f.pos.Line, f.pos.Column, f.msg)
}

func main() {
	flag.Parse()
	root := flag.Arg(0)
	if root == "" {
		root = "."
	}
	findings, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetinvariants:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vetinvariants: %d invariant violation(s)\n", len(findings))
		os.Exit(1)
	}
}

// check walks every non-test Go file under root/internal and returns the
// invariant violations in file order.
func check(root string) ([]finding, error) {
	internalDir := filepath.Join(root, "internal")
	if _, err := os.Stat(internalDir); err != nil {
		return nil, fmt.Errorf("no internal directory under %s: %w", root, err)
	}
	var findings []finding
	err := filepath.WalkDir(internalDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.ToSlash(filepath.Dir(path))
		fs, err := checkFile(path,
			dir == filepath.ToSlash(filepath.Join(root, "internal", "obs")),
			dir == filepath.ToSlash(filepath.Join(root, "internal", "detect")))
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
		return nil
	})
	return findings, err
}

// forbidden maps an import path to the selector names internal packages
// must not call on it.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":   "internal packages must use obs.Now, not time.Now (single clock source)",
		"Since": "internal packages must use obs.Since, not time.Since (single clock source)",
	},
	"fmt": {
		"Print":   "internal packages must not print to stdout; return values, log via obs or take an io.Writer",
		"Printf":  "internal packages must not print to stdout; return values, log via obs or take an io.Writer",
		"Println": "internal packages must not print to stdout; return values, log via obs or take an io.Writer",
	},
}

// forbiddenDetect maps import paths to the selector names internal/detect
// must not call: system construction belongs to the analysis.Engine pool,
// never to the cell fan-out.
var forbiddenDetect = map[string]map[string]string{
	"analogdft/internal/mna": {
		"NewSystem": "internal/detect must not build MNA systems; reuse a pooled analysis.Engine",
	},
}

// checkFile parses one file and reports forbidden selector calls. An
// obs-package file only gets the fmt rule: it is the clock gate. A
// detect-package file additionally gets the clone-free rule (no .Clone
// method calls, no mna.NewSystem).
func checkFile(path string, isObs, isDetect bool) ([]finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}

	// Map the local name of each interesting import; an underscore or dot
	// import never produces a plain selector, so those are ignored.
	names := make(map[string]string) // local identifier → import path
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || (forbidden[p] == nil && !(isDetect && forbiddenDetect[p] != nil)) {
			continue
		}
		if p == "time" && isObs {
			continue
		}
		local := filepath.Base(p) // the package name matches its directory here
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local != "_" && local != "." {
			names[local] = p
		}
	}
	if len(names) == 0 && !isDetect {
		return nil, nil
	}

	var findings []finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if isDetect && sel.Sel.Name == "Clone" {
			findings = append(findings, finding{pos: fset.Position(sel.Pos()),
				msg: "internal/detect must not clone circuits; reuse a pooled analysis.Engine"})
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, imported := names[ident.Name]
		if !imported {
			return true
		}
		if msg, bad := forbidden[pkg][sel.Sel.Name]; bad {
			findings = append(findings, finding{pos: fset.Position(sel.Pos()), msg: msg})
		}
		if isDetect {
			if msg, bad := forbiddenDetect[pkg][sel.Sel.Name]; bad {
				findings = append(findings, finding{pos: fset.Position(sel.Pos()), msg: msg})
			}
		}
		return true
	})
	return findings, nil
}
