// Command vetinvariants enforces repository-wide source invariants that
// go vet does not know about:
//
//	vetinvariants [repo-root]
//
// Rule 1 — single clock source: internal packages never call time.Now or
// time.Since directly; every clock read goes through obs.Now/obs.Since so
// the timing gates in internal/obs stay the only place wall-clock time
// enters the system. Only the internal/obs package itself is exempt.
//
// Rule 2 — no stray prints: internal packages never call fmt.Print,
// fmt.Printf or fmt.Println. Library code reports through error values,
// the obs logger or an io.Writer handed in by the caller; the Fprint
// variants are therefore fine, as are the commands under cmd/.
//
// Rule 3 — allocation-flat fault simulation: internal/detect never clones
// circuits or builds MNA systems itself. Every cell evaluation goes
// through the analysis.Engine pool (or fault.Apply on the naive fallback
// path), so the hot fan-out stays clone-free; a direct .Clone(...) method
// call or an mna.NewSystem call inside internal/detect is a violation.
//
// Rule 4 — cancellable job layer: internal/jobs and cmd/dftserved never
// call the blocking simulation entry points (EvaluateCircuit, BuildMatrix,
// Optimize); they must use the ...Context variants (or the Session
// methods, which take a context) so every job the server runs can be
// cancelled mid-simulation. This is the only rule that reaches outside
// internal/: cmd/dftserved is walked for it, with the internal-only rules
// switched off there.
//
// Rule 5 — allocation-free factorization in the sweep hot path:
// internal/analysis never calls numeric.Factor, the cloning variant that
// copies the matrix before factoring. Every factorization in the engine
// goes through numeric.FactorInPlace (directly or via the sweeper's
// workspace), so sweeps stay allocation-flat and the low-rank grid cache
// owns its matrices explicitly.
//
// All rules skip _test.go files. The checker is import-alias aware and
// uses only the standard library (go/parser + go/ast), so it runs in CI
// without fetching anything. Findings print as file:line:col and make the
// command exit 1.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// finding is one invariant violation.
type finding struct {
	pos token.Position
	msg string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", f.pos.Filename, f.pos.Line, f.pos.Column, f.msg)
}

func main() {
	flag.Parse()
	root := flag.Arg(0)
	if root == "" {
		root = "."
	}
	findings, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetinvariants:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vetinvariants: %d invariant violation(s)\n", len(findings))
		os.Exit(1)
	}
}

// fileRules selects which rule families apply to one file.
type fileRules struct {
	base       bool // rules 1–2: clock source and stray prints
	isObs      bool // the clock gate itself; exempt from rule 1
	isDetect   bool // rule 3: clone-free fan-out
	jobLayer   bool // rule 4: no blocking sim entry points
	isAnalysis bool // rule 5: in-place factorization only
}

// check walks every non-test Go file under root/internal (all rules) and
// root/cmd/dftserved (rule 4 only) and returns the invariant violations
// in file order.
func check(root string) ([]finding, error) {
	internalDir := filepath.Join(root, "internal")
	if _, err := os.Stat(internalDir); err != nil {
		return nil, fmt.Errorf("no internal directory under %s: %w", root, err)
	}
	var findings []finding
	walk := func(dir string, rules func(dir string) fileRules) error {
		return filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			fs, err := checkFile(path, rules(filepath.ToSlash(filepath.Dir(path))))
			if err != nil {
				return err
			}
			findings = append(findings, fs...)
			return nil
		})
	}
	err := walk(internalDir, func(dir string) fileRules {
		return fileRules{
			base:       true,
			isObs:      dir == filepath.ToSlash(filepath.Join(root, "internal", "obs")),
			isDetect:   dir == filepath.ToSlash(filepath.Join(root, "internal", "detect")),
			jobLayer:   dir == filepath.ToSlash(filepath.Join(root, "internal", "jobs")),
			isAnalysis: dir == filepath.ToSlash(filepath.Join(root, "internal", "analysis")),
		}
	})
	if err != nil {
		return nil, err
	}
	servedDir := filepath.Join(root, "cmd", "dftserved")
	if _, statErr := os.Stat(servedDir); statErr == nil {
		err = walk(servedDir, func(string) fileRules {
			return fileRules{jobLayer: true}
		})
	}
	return findings, err
}

// forbidden maps an import path to the selector names internal packages
// must not call on it.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":   "internal packages must use obs.Now, not time.Now (single clock source)",
		"Since": "internal packages must use obs.Since, not time.Since (single clock source)",
	},
	"fmt": {
		"Print":   "internal packages must not print to stdout; return values, log via obs or take an io.Writer",
		"Printf":  "internal packages must not print to stdout; return values, log via obs or take an io.Writer",
		"Println": "internal packages must not print to stdout; return values, log via obs or take an io.Writer",
	},
}

// forbiddenDetect maps import paths to the selector names internal/detect
// must not call: system construction belongs to the analysis.Engine pool,
// never to the cell fan-out.
var forbiddenDetect = map[string]map[string]string{
	"analogdft/internal/mna": {
		"NewSystem": "internal/detect must not build MNA systems; reuse a pooled analysis.Engine",
	},
}

// forbiddenAnalysis maps import paths to the selector names
// internal/analysis must not call: factorization in the sweep engine is
// always in place, never the matrix-cloning numeric.Factor.
var forbiddenAnalysis = map[string]map[string]string{
	"analogdft/internal/numeric": {
		"Factor": "internal/analysis must factor in place (numeric.FactorInPlace or a Workspace), never via the cloning numeric.Factor",
	},
}

// forbiddenJobs maps import paths to the blocking simulation entry points
// the job layer (internal/jobs and cmd/dftserved) must not call: jobs run
// through the ...Context variants so cancellation reaches the engine.
var forbiddenJobs = map[string]map[string]string{
	"analogdft": {
		"EvaluateCircuit": "the job layer must call EvaluateCircuitContext (or Session.Evaluate) so jobs stay cancellable",
		"BuildMatrix":     "the job layer must call BuildMatrixContext (or Session.Matrix) so jobs stay cancellable",
		"Optimize":        "the job layer must call OptimizeContext (or Session.Optimize) so jobs stay cancellable",
	},
	"analogdft/internal/detect": {
		"EvaluateCircuit": "the job layer must call detect.EvaluateCircuitContext so jobs stay cancellable",
		"BuildMatrix":     "the job layer must call detect.BuildMatrixContext so jobs stay cancellable",
	},
	"analogdft/internal/core": {
		"Optimize": "the job layer must call core.OptimizeContext so jobs stay cancellable",
	},
}

// checkFile parses one file and reports forbidden selector calls. An
// obs-package file only gets the fmt rule: it is the clock gate. A
// detect-package file additionally gets the clone-free rule (no .Clone
// method calls, no mna.NewSystem). A job-layer file gets the
// blocking-entry-point rule; an analysis-package file the in-place
// factorization rule.
func checkFile(path string, r fileRules) ([]finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}

	// Map the local name of each interesting import; an underscore or dot
	// import never produces a plain selector, so those are ignored.
	names := make(map[string]string) // local identifier → import path
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		interesting := (r.base && forbidden[p] != nil) ||
			(r.isDetect && forbiddenDetect[p] != nil) ||
			(r.jobLayer && forbiddenJobs[p] != nil) ||
			(r.isAnalysis && forbiddenAnalysis[p] != nil)
		if !interesting {
			continue
		}
		if p == "time" && r.isObs {
			continue
		}
		local := filepath.Base(p) // the package name matches its directory here
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local != "_" && local != "." {
			names[local] = p
		}
	}
	if len(names) == 0 && !r.isDetect {
		return nil, nil
	}

	var findings []finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if r.isDetect && sel.Sel.Name == "Clone" {
			findings = append(findings, finding{pos: fset.Position(sel.Pos()),
				msg: "internal/detect must not clone circuits; reuse a pooled analysis.Engine"})
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, imported := names[ident.Name]
		if !imported {
			return true
		}
		if r.base {
			if msg, bad := forbidden[pkg][sel.Sel.Name]; bad {
				findings = append(findings, finding{pos: fset.Position(sel.Pos()), msg: msg})
			}
		}
		if r.isDetect {
			if msg, bad := forbiddenDetect[pkg][sel.Sel.Name]; bad {
				findings = append(findings, finding{pos: fset.Position(sel.Pos()), msg: msg})
			}
		}
		if r.jobLayer {
			if msg, bad := forbiddenJobs[pkg][sel.Sel.Name]; bad {
				findings = append(findings, finding{pos: fset.Position(sel.Pos()), msg: msg})
			}
		}
		if r.isAnalysis {
			if msg, bad := forbiddenAnalysis[pkg][sel.Sel.Name]; bad {
				findings = append(findings, finding{pos: fset.Position(sel.Pos()), msg: msg})
			}
		}
		return true
	})
	return findings, nil
}
