// Command benchdiff compares two BENCH_<date>.json perf-trajectory files
// and reports per-benchmark ns/op, B/op and allocs/op deltas against
// regression thresholds:
//
//	benchdiff BENCH_2026-08-05.json BENCH_2026-08-08.json
//	benchdiff -dir .          # freshest two BENCH_*.json in a directory
//
// With -dim the comparison turns cross-sectional: a single snapshot (one
// positional file, or the freshest one in -dir) is diffed against itself
// along a sub-benchmark dimension, pairing names that differ only in the
// given key=value path segment:
//
//	benchdiff -dir . -dim layout=dense:sparse -gate allocs
//
// which asserts, within one run on one machine, that every sparse-layout
// benchmark still beats (or at least does not regress against) its dense
// twin — the base variant is the "old" side, the alternative the "new".
//
// The ns/op threshold is noise-aware: a benchmark whose old samples
// spread wider than -ns-pct uses that spread as its effective threshold.
// -gate selects what fails the run: "all" (any regression), "allocs"
// (allocs/op only — deterministic, so CI enforces it while ns/op stays
// advisory), or "none" (report only). In -dir mode a directory with
// fewer snapshots than the comparison needs is not an error: the
// trajectory simply has no pair to compare yet, so benchdiff says so and
// exits 0.
// Exit status: 0 no gated regressions, 1 usage or I/O error, 2 gated
// regressions found.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"analogdft/internal/obs/benchfmt"
)

func main() {
	dir := flag.String("dir", "", "compare the freshest two BENCH_*.json files in this directory")
	nsPct := flag.Float64("ns-pct", benchfmt.DefaultThresholds.NsPct, "ns/op regression threshold, percent")
	memPct := flag.Float64("mem-pct", benchfmt.DefaultThresholds.MemPct, "B/op and allocs/op regression threshold, percent")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of text")
	gate := flag.String("gate", "all", "which regressions fail the run: all, allocs or none")
	dim := flag.String("dim", "", "cross-sectional diff within one snapshot: key=base:alt (e.g. layout=dense:sparse)")
	flag.Parse()

	code, err := runDim(*dim, *dir, flag.Args(), benchfmt.Thresholds{NsPct: *nsPct, MemPct: *memPct}, *asJSON, *gate, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// runDim dispatches on -dim: empty runs the temporal two-snapshot diff,
// anything else the cross-sectional single-snapshot one.
func runDim(dim, dir string, args []string, th benchfmt.Thresholds, asJSON bool, gate string, stdout io.Writer) (int, error) {
	if dim == "" {
		return run(dir, args, th, asJSON, gate, stdout)
	}
	if err := checkGate(gate); err != nil {
		return 1, err
	}
	key, spec, ok := strings.Cut(dim, "=")
	base, alt, ok2 := strings.Cut(spec, ":")
	if !ok || !ok2 || key == "" || base == "" || alt == "" {
		return 1, fmt.Errorf("bad -dim %q (want key=base:alt, e.g. layout=dense:sparse)", dim)
	}
	path, err := resolveOne(dir, args)
	if err != nil {
		return 1, err
	}
	if path == "" {
		fmt.Fprintf(stdout, "benchdiff: no BENCH_*.json snapshot in %s; nothing to compare yet\n", dir)
		return 0, nil
	}
	f, err := benchfmt.ReadFile(path)
	if err != nil {
		return 1, err
	}
	rep, err := benchfmt.DiffDim(f, key, base, alt, th)
	if err != nil {
		return 1, err
	}
	return report(rep, asJSON, gate, stdout)
}

func run(dir string, args []string, th benchfmt.Thresholds, asJSON bool, gate string, stdout io.Writer) (int, error) {
	if err := checkGate(gate); err != nil {
		return 1, err
	}
	oldPath, newPath, err := resolvePair(dir, args)
	if err != nil {
		return 1, err
	}
	if oldPath == "" {
		// -dir with fewer than two snapshots: nothing to diff yet. This is
		// the normal state of a fresh checkout or a first bench run, not a
		// failure — CI must not go red before a trajectory exists.
		fmt.Fprintf(stdout, "benchdiff: fewer than two BENCH_*.json snapshots in %s; nothing to compare yet\n", dir)
		return 0, nil
	}
	oldF, err := benchfmt.ReadFile(oldPath)
	if err != nil {
		return 1, err
	}
	newF, err := benchfmt.ReadFile(newPath)
	if err != nil {
		return 1, err
	}
	rep := benchfmt.Diff(oldF, newF, th)
	if rep.OldLabel == "" {
		rep.OldLabel = filepath.Base(oldPath)
	}
	if rep.NewLabel == "" {
		rep.NewLabel = filepath.Base(newPath)
	}
	return report(rep, asJSON, gate, stdout)
}

// checkGate validates the -gate value.
func checkGate(gate string) error {
	switch gate {
	case "all", "allocs", "none":
		return nil
	default:
		return fmt.Errorf("unknown -gate %q (want all, allocs or none)", gate)
	}
}

// report renders the comparison and applies the gate.
func report(rep *benchfmt.Report, asJSON bool, gate string, stdout io.Writer) (int, error) {
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 1, err
		}
	} else if err := rep.WriteText(stdout); err != nil {
		return 1, err
	}
	switch gate {
	case "all":
		if len(rep.Regressions()) > 0 {
			return 2, nil
		}
	case "allocs":
		if reg := rep.AllocRegressions(); len(reg) > 0 {
			fmt.Fprintf(stdout, "enforcing allocs gate: %d allocation regression(s)\n", len(reg))
			return 2, nil
		}
	}
	return 0, nil
}

// resolvePair turns the CLI inputs into (old, new) paths: either the two
// positional files as given, or the freshest two BENCH_*.json in -dir
// (the date-stamped filenames sort chronologically). In -dir mode, fewer
// than two snapshots returns empty paths and no error — the caller
// reports the empty trajectory and exits cleanly.
func resolvePair(dir string, args []string) (string, string, error) {
	if dir != "" {
		if len(args) != 0 {
			return "", "", fmt.Errorf("-dir and positional files are mutually exclusive")
		}
		matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			return "", "", err
		}
		if len(matches) < 2 {
			return "", "", nil
		}
		sort.Strings(matches)
		return matches[len(matches)-2], matches[len(matches)-1], nil
	}
	if len(args) != 2 {
		return "", "", fmt.Errorf("usage: benchdiff OLD.json NEW.json  (or -dir DIR)")
	}
	return args[0], args[1], nil
}

// resolveOne picks the single snapshot a -dim comparison runs over: the
// one positional file, or the freshest BENCH_*.json in -dir. As with
// resolvePair, an empty -dir is reported as "nothing yet", not an error.
func resolveOne(dir string, args []string) (string, error) {
	if dir != "" {
		if len(args) != 0 {
			return "", fmt.Errorf("-dir and positional files are mutually exclusive")
		}
		matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			return "", err
		}
		if len(matches) == 0 {
			return "", nil
		}
		sort.Strings(matches)
		return matches[len(matches)-1], nil
	}
	if len(args) != 1 {
		return "", fmt.Errorf("usage: benchdiff -dim key=base:alt FILE.json  (or -dir DIR)")
	}
	return args[0], nil
}
