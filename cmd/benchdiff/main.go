// Command benchdiff compares two BENCH_<date>.json perf-trajectory files
// and reports per-benchmark ns/op, B/op and allocs/op deltas against
// regression thresholds:
//
//	benchdiff BENCH_2026-08-05.json BENCH_2026-08-08.json
//	benchdiff -dir .          # freshest two BENCH_*.json in a directory
//
// The ns/op threshold is noise-aware: a benchmark whose old samples
// spread wider than -ns-pct uses that spread as its effective threshold.
// -gate selects what fails the run: "all" (any regression), "allocs"
// (allocs/op only — deterministic, so CI enforces it while ns/op stays
// advisory), or "none" (report only). In -dir mode a directory with
// fewer than two snapshots is not an error: the trajectory simply has no
// pair to compare yet, so benchdiff says so and exits 0.
// Exit status: 0 no gated regressions, 1 usage or I/O error, 2 gated
// regressions found.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"analogdft/internal/obs/benchfmt"
)

func main() {
	dir := flag.String("dir", "", "compare the freshest two BENCH_*.json files in this directory")
	nsPct := flag.Float64("ns-pct", benchfmt.DefaultThresholds.NsPct, "ns/op regression threshold, percent")
	memPct := flag.Float64("mem-pct", benchfmt.DefaultThresholds.MemPct, "B/op and allocs/op regression threshold, percent")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of text")
	gate := flag.String("gate", "all", "which regressions fail the run: all, allocs or none")
	flag.Parse()

	code, err := run(*dir, flag.Args(), benchfmt.Thresholds{NsPct: *nsPct, MemPct: *memPct}, *asJSON, *gate, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(dir string, args []string, th benchfmt.Thresholds, asJSON bool, gate string, stdout io.Writer) (int, error) {
	switch gate {
	case "all", "allocs", "none":
	default:
		return 1, fmt.Errorf("unknown -gate %q (want all, allocs or none)", gate)
	}
	oldPath, newPath, err := resolvePair(dir, args)
	if err != nil {
		return 1, err
	}
	if oldPath == "" {
		// -dir with fewer than two snapshots: nothing to diff yet. This is
		// the normal state of a fresh checkout or a first bench run, not a
		// failure — CI must not go red before a trajectory exists.
		fmt.Fprintf(stdout, "benchdiff: fewer than two BENCH_*.json snapshots in %s; nothing to compare yet\n", dir)
		return 0, nil
	}
	oldF, err := benchfmt.ReadFile(oldPath)
	if err != nil {
		return 1, err
	}
	newF, err := benchfmt.ReadFile(newPath)
	if err != nil {
		return 1, err
	}
	rep := benchfmt.Diff(oldF, newF, th)
	if rep.OldLabel == "" {
		rep.OldLabel = filepath.Base(oldPath)
	}
	if rep.NewLabel == "" {
		rep.NewLabel = filepath.Base(newPath)
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 1, err
		}
	} else if err := rep.WriteText(stdout); err != nil {
		return 1, err
	}
	switch gate {
	case "all":
		if len(rep.Regressions()) > 0 {
			return 2, nil
		}
	case "allocs":
		if reg := rep.AllocRegressions(); len(reg) > 0 {
			fmt.Fprintf(stdout, "enforcing allocs gate: %d allocation regression(s)\n", len(reg))
			return 2, nil
		}
	}
	return 0, nil
}

// resolvePair turns the CLI inputs into (old, new) paths: either the two
// positional files as given, or the freshest two BENCH_*.json in -dir
// (the date-stamped filenames sort chronologically). In -dir mode, fewer
// than two snapshots returns empty paths and no error — the caller
// reports the empty trajectory and exits cleanly.
func resolvePair(dir string, args []string) (string, string, error) {
	if dir != "" {
		if len(args) != 0 {
			return "", "", fmt.Errorf("-dir and positional files are mutually exclusive")
		}
		matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			return "", "", err
		}
		if len(matches) < 2 {
			return "", "", nil
		}
		sort.Strings(matches)
		return matches[len(matches)-2], matches[len(matches)-1], nil
	}
	if len(args) != 2 {
		return "", "", fmt.Errorf("usage: benchdiff OLD.json NEW.json  (or -dir DIR)")
	}
	return args[0], args[1], nil
}
