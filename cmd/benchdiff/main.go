// Command benchdiff compares two BENCH_<date>.json perf-trajectory files
// and reports per-benchmark ns/op, B/op and allocs/op deltas against
// regression thresholds:
//
//	benchdiff BENCH_2026-08-05.json BENCH_2026-08-08.json
//	benchdiff -dir .          # freshest two BENCH_*.json in a directory
//
// The ns/op threshold is noise-aware: a benchmark whose old samples
// spread wider than -ns-pct uses that spread as its effective threshold.
// Exit status: 0 no regressions, 1 usage or I/O error, 2 regressions
// found — CI runs it as an advisory gate (continue-on-error) so the
// trajectory is visible without blocking merges on jitter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"analogdft/internal/obs/benchfmt"
)

func main() {
	dir := flag.String("dir", "", "compare the freshest two BENCH_*.json files in this directory")
	nsPct := flag.Float64("ns-pct", benchfmt.DefaultThresholds.NsPct, "ns/op regression threshold, percent")
	memPct := flag.Float64("mem-pct", benchfmt.DefaultThresholds.MemPct, "B/op and allocs/op regression threshold, percent")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of text")
	flag.Parse()

	code, err := run(*dir, flag.Args(), benchfmt.Thresholds{NsPct: *nsPct, MemPct: *memPct}, *asJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(dir string, args []string, th benchfmt.Thresholds, asJSON bool) (int, error) {
	oldPath, newPath, err := resolvePair(dir, args)
	if err != nil {
		return 1, err
	}
	oldF, err := benchfmt.ReadFile(oldPath)
	if err != nil {
		return 1, err
	}
	newF, err := benchfmt.ReadFile(newPath)
	if err != nil {
		return 1, err
	}
	rep := benchfmt.Diff(oldF, newF, th)
	if rep.OldLabel == "" {
		rep.OldLabel = filepath.Base(oldPath)
	}
	if rep.NewLabel == "" {
		rep.NewLabel = filepath.Base(newPath)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 1, err
		}
	} else if err := rep.WriteText(os.Stdout); err != nil {
		return 1, err
	}
	if len(rep.Regressions()) > 0 {
		return 2, nil
	}
	return 0, nil
}

// resolvePair turns the CLI inputs into (old, new) paths: either the two
// positional files as given, or the freshest two BENCH_*.json in -dir
// (the date-stamped filenames sort chronologically).
func resolvePair(dir string, args []string) (string, string, error) {
	if dir != "" {
		if len(args) != 0 {
			return "", "", fmt.Errorf("-dir and positional files are mutually exclusive")
		}
		matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			return "", "", err
		}
		if len(matches) < 2 {
			return "", "", fmt.Errorf("%s: need at least two BENCH_*.json files, found %d", dir, len(matches))
		}
		sort.Strings(matches)
		return matches[len(matches)-2], matches[len(matches)-1], nil
	}
	if len(args) != 2 {
		return "", "", fmt.Errorf("usage: benchdiff OLD.json NEW.json  (or -dir DIR)")
	}
	return args[0], args[1], nil
}
