package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"analogdft/internal/obs/benchfmt"
)

// writeSnapshot parses benchmark text and writes it as a BENCH_*.json
// snapshot under dir.
func writeSnapshot(t *testing.T, dir, name, text string) {
	t.Helper()
	f, err := benchfmt.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDirWithTooFewSnapshotsExitsZero(t *testing.T) {
	for _, snapshots := range []int{0, 1} {
		dir := t.TempDir()
		if snapshots == 1 {
			writeSnapshot(t, dir, "BENCH_2026-08-08.json", "BenchmarkOnly-8 100 100 ns/op\n")
		}
		var out bytes.Buffer
		code, err := run(dir, nil, benchfmt.Thresholds{}, false, "all", &out)
		if err != nil {
			t.Fatalf("%d snapshot(s): unexpected error %v", snapshots, err)
		}
		if code != 0 {
			t.Fatalf("%d snapshot(s): exit %d, want 0", snapshots, code)
		}
		if !strings.Contains(out.String(), "fewer than two BENCH_*.json snapshots") {
			t.Errorf("%d snapshot(s): missing explanatory note, got %q", snapshots, out.String())
		}
	}
}

func TestDirComparesFreshestPair(t *testing.T) {
	dir := t.TempDir()
	// Three snapshots: the diff must pick the last two, so the regression
	// planted between day 1 and day 2 is invisible while day 2 → day 3 is
	// flat.
	writeSnapshot(t, dir, "BENCH_2026-08-06.json", "BenchmarkX-8 100 100 ns/op\n")
	writeSnapshot(t, dir, "BENCH_2026-08-07.json", "BenchmarkX-8 100 500 ns/op\n")
	writeSnapshot(t, dir, "BENCH_2026-08-08.json", "BenchmarkX-8 100 505 ns/op\n")
	var out bytes.Buffer
	code, err := run(dir, nil, benchfmt.Thresholds{}, false, "all", &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("unexpected verdict: %q", out.String())
	}
}

func TestAllocsGate(t *testing.T) {
	dir := t.TempDir()
	// ns/op regresses 5x but allocs/op is flat: the allocs gate passes
	// while the full gate fails.
	writeSnapshot(t, dir, "BENCH_2026-08-07.json", "BenchmarkX-8 100 100 ns/op 1000 B/op 10 allocs/op\n")
	writeSnapshot(t, dir, "BENCH_2026-08-08.json", "BenchmarkX-8 100 500 ns/op 1000 B/op 10 allocs/op\n")

	var out bytes.Buffer
	code, err := run(dir, nil, benchfmt.Thresholds{}, false, "all", &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("gate=all exit %d, want 2", code)
	}
	out.Reset()
	code, err = run(dir, nil, benchfmt.Thresholds{}, false, "allocs", &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("gate=allocs exit %d, want 0 (ns-only regression)\n%s", code, out.String())
	}

	// Now regress the allocation count: both gates fail.
	writeSnapshot(t, dir, "BENCH_2026-08-09.json", "BenchmarkX-8 100 500 ns/op 1000 B/op 20 allocs/op\n")
	out.Reset()
	code, err = run(dir, nil, benchfmt.Thresholds{}, false, "allocs", &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("gate=allocs exit %d, want 2 after alloc regression\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "enforcing allocs gate") {
		t.Errorf("missing allocs-gate verdict: %q", out.String())
	}

	out.Reset()
	code, err = run(dir, nil, benchfmt.Thresholds{}, false, "none", &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("gate=none exit %d, want 0", code)
	}
}

func TestDimGateWithinOneSnapshot(t *testing.T) {
	dir := t.TempDir()
	// Two snapshots: the -dim comparison must use only the freshest one.
	// In the older file sparse regresses allocs; in the newer it wins.
	writeSnapshot(t, dir, "BENCH_2026-08-07.json",
		"BenchmarkBuild/layout=dense-8 10 1000 ns/op 2000 B/op 100 allocs/op\n"+
			"BenchmarkBuild/layout=sparse-8 10 900 ns/op 2000 B/op 200 allocs/op\n")
	writeSnapshot(t, dir, "BENCH_2026-08-08.json",
		"BenchmarkBuild/layout=dense-8 10 1000 ns/op 2000 B/op 100 allocs/op\n"+
			"BenchmarkBuild/layout=sparse-8 10 800 ns/op 2000 B/op 90 allocs/op\n")
	var out bytes.Buffer
	code, err := runDim("layout=dense:sparse", dir, nil, benchfmt.Thresholds{}, false, "allocs", &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d, want 0 (freshest snapshot has no sparse regression)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "layout=dense:sparse") {
		t.Errorf("report does not show the paired dimension: %q", out.String())
	}

	// Regress sparse in a newer snapshot: the dim gate must now fail.
	writeSnapshot(t, dir, "BENCH_2026-08-09.json",
		"BenchmarkBuild/layout=dense-8 10 1000 ns/op 2000 B/op 100 allocs/op\n"+
			"BenchmarkBuild/layout=sparse-8 10 800 ns/op 2000 B/op 150 allocs/op\n")
	out.Reset()
	code, err = runDim("layout=dense:sparse", dir, nil, benchfmt.Thresholds{}, false, "allocs", &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("exit %d, want 2 after sparse alloc regression\n%s", code, out.String())
	}
}

func TestDimEmptyDirExitsZero(t *testing.T) {
	var out bytes.Buffer
	code, err := runDim("layout=dense:sparse", t.TempDir(), nil, benchfmt.Thresholds{}, false, "allocs", &out)
	if err != nil || code != 0 {
		t.Fatalf("empty dir: code=%d err=%v", code, err)
	}
}

func TestDimBadSpecErrors(t *testing.T) {
	for _, spec := range []string{"layout", "layout=dense", "=dense:sparse", "layout=:sparse", "layout=dense:"} {
		if _, err := runDim(spec, t.TempDir(), nil, benchfmt.Thresholds{}, false, "all", new(bytes.Buffer)); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestUnknownGateErrors(t *testing.T) {
	if _, err := run(t.TempDir(), nil, benchfmt.Thresholds{}, false, "sometimes", new(bytes.Buffer)); err == nil {
		t.Fatal("unknown gate accepted")
	}
}

func TestDirAndPositionalAreExclusive(t *testing.T) {
	if _, err := run(t.TempDir(), []string{"a.json", "b.json"}, benchfmt.Thresholds{}, false, "all", new(bytes.Buffer)); err == nil {
		t.Fatal("-dir with positional files accepted")
	}
}
