// Command acsim sweeps a netlist's transfer function and writes Bode data
// as CSV (freq, magnitude, dB, phase):
//
//	acsim -start 10 -stop 1e6 -points 201 circuit.cir > bode.csv
//
// With no deck argument the built-in paper biquad is used. A configuration
// index can be selected with -config to sweep a DFT test configuration
// (the deck needs a .chain directive or opamps to auto-chain).
package main

import (
	"flag"
	"fmt"
	"os"

	"analogdft"
	"analogdft/internal/obs/cliobs"
)

func main() {
	var (
		start  = flag.Float64("start", 1, "sweep start frequency (Hz)")
		stop   = flag.Float64("stop", 1e8, "sweep stop frequency (Hz)")
		points = flag.Int("points", 201, "number of log-spaced points")
		cfgIdx = flag.Int("config", -1, "DFT configuration index to emulate (-1 = unmodified circuit)")
		outPth = flag.String("o", "", "output file (default stdout)")
		retry  = flag.Int("retry", 0, "re-solve singular points on a jittered grid, up to this many attempts each")
	)
	lintf := cliobs.RegisterLint(flag.CommandLine)
	obsf := cliobs.RegisterObs(flag.CommandLine)
	flag.Parse()

	sess, err := obsf.Start("acsim", nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acsim:", err)
		os.Exit(1)
	}
	sess.Report.SetInput("deck", flag.Arg(0))
	runErr := run(flag.Arg(0), *start, *stop, *points, *cfgIdx, *retry, *outPth, lintf)
	if err := sess.Finish(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "acsim:", runErr)
		os.Exit(1)
	}
}

func run(path string, start, stop float64, points, cfgIdx, retry int, outPath string, lintf *cliobs.LintFlags) error {
	ckt, chain, err := load(path, lintf)
	if err != nil {
		return err
	}
	if cfgIdx >= 0 {
		if len(chain) == 0 {
			return fmt.Errorf("deck has no configurable-opamp chain")
		}
		m, err := analogdft.ApplyDFT(ckt, chain)
		if err != nil {
			return err
		}
		cfg, err := m.Config(cfgIdx)
		if err != nil {
			return err
		}
		if ckt, err = m.Configure(cfg); err != nil {
			return err
		}
	}
	resp, err := analogdft.Sweep(ckt, analogdft.SweepSpec{StartHz: start, StopHz: stop, Points: points})
	if err != nil {
		return err
	}
	if n := resp.InvalidCount(); n > 0 {
		if retry > 0 {
			recovered, solves, err := analogdft.RetrySingularPoints(ckt, resp, retry)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "acsim: %d of %d points singular; recovered %d with %d extra solves\n",
				n, points, recovered, solves)
		} else {
			fmt.Fprintf(os.Stderr, "acsim: %d of %d points singular (written as invalid; use -retry to re-solve)\n",
				n, points)
		}
	}
	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return resp.WriteCSV(out)
}

func load(path string, lintf *cliobs.LintFlags) (*analogdft.Circuit, []string, error) {
	b, err := analogdft.LoadBench(path)
	if err != nil {
		return nil, nil, err
	}
	if err := lintf.Preflight("acsim", b, os.Stderr); err != nil {
		return nil, nil, err
	}
	return b.Circuit, b.Chain, nil
}
