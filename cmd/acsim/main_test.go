package main

import (
	"analogdft/internal/obs/cliobs"

	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultCircuit(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bode.csv")
	if err := run("", 10, 1e6, 11, -1, 0, out, &cliobs.LintFlags{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 12 {
		t.Fatalf("CSV lines = %d, want 12", len(lines))
	}
	if !strings.HasPrefix(lines[0], "freq_hz,") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunConfiguredSweep(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "c7.csv")
	// Configuration 7 is transparent: |H| = 1 at every frequency.
	if err := run("", 10, 1e5, 5, 7, 0, out, &cliobs.LintFlags{}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n")[1:] {
		fields := strings.Split(line, ",")
		if !strings.HasPrefix(fields[1], "1") && !strings.HasPrefix(fields[1], "0.999") {
			t.Fatalf("transparent config magnitude = %q", fields[1])
		}
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run("", 10, 1e5, 5, 99, 0, "", &cliobs.LintFlags{}); err == nil {
		t.Fatal("bad config index accepted")
	}
}

func TestRunFromDeck(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "deck.csv")
	if err := run("../../testdata/biquad.cir", 10, 1e6, 5, -1, 2, out, &cliobs.LintFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMissing(t *testing.T) {
	if _, _, err := load("/no/such.cir", &cliobs.LintFlags{}); err == nil {
		t.Fatal("missing deck accepted")
	}
}
