package analogdft

import (
	"context"

	"analogdft/internal/obs"
)

// Telemetry is the library's observability runtime: span tracer, metric
// registry and timing switch. All instrumentation inside the library
// reports to the process-default runtime; Observability returns that
// handle so embedding applications can enable tracing, export metrics or
// snapshot a run without any extra wiring.
type Telemetry = obs.Runtime

// Span is one timed operation of a trace. A nil *Span is valid and inert.
type Span = obs.Span

// Observability returns the process-wide telemetry runtime used by every
// package of the library.
func Observability() *Telemetry { return obs.Default() }

// StartSpan opens a trace span named name under the span carried by ctx
// (if any). While tracing is disabled it returns ctx and a nil span, so
// callers never need to guard instrumentation.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.Start(ctx, name)
}
