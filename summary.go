package analogdft

import (
	"encoding/json"
	"io"
)

// ExperimentSummary is the machine-readable digest of an Experiment, for
// downstream tooling (regression tracking, plotting, CI gates).
type ExperimentSummary struct {
	Circuit    string   `json:"circuit"`
	Opamps     int      `json:"opamps"`
	Faults     []string `json:"faults"`
	Eps        float64  `json:"eps"`
	RegionLoHz float64  `json:"region_lo_hz"`
	RegionHiHz float64  `json:"region_hi_hz"`
	GridPoints int      `json:"grid_points"`

	InitialFaultCoverage float64 `json:"initial_fault_coverage"`
	DFTFaultCoverage     float64 `json:"dft_fault_coverage"`
	InitialAvgOmegaDet   float64 `json:"initial_avg_omega_det_pct"`
	BruteAvgOmegaDet     float64 `json:"brute_avg_omega_det_pct"`
	OptimalAvgOmegaDet   float64 `json:"optimal_avg_omega_det_pct"`
	PartialAvgOmegaDet   float64 `json:"partial_avg_omega_det_pct"`

	EssentialConfigs []string   `json:"essential_configs"`
	CandidateSets    [][]string `json:"candidate_sets"`
	OptimalSet       []string   `json:"optimal_set"`
	PartialOpamps    []string   `json:"partial_opamps"`
	UsableConfigs    []string   `json:"usable_configs"`
	Undetectable     []string   `json:"undetectable_faults"`

	// DetMatrix[i][j] is 1 when configuration ConfigLabels[i] detects
	// Faults[j].
	ConfigLabels []string    `json:"config_labels"`
	DetMatrix    [][]int     `json:"det_matrix"`
	OmegaMatrix  [][]float64 `json:"omega_matrix_pct"`
}

// Summary digests the experiment.
func (e *Experiment) Summary() *ExperimentSummary {
	s := &ExperimentSummary{
		Circuit:    e.Bench.Circuit.Name,
		Opamps:     len(e.Bench.Chain),
		Faults:     e.Faults.IDs(),
		Eps:        e.Opts.Eps,
		RegionLoHz: e.Matrix.Region.LoHz,
		RegionHiHz: e.Matrix.Region.HiHz,
		GridPoints: e.Opts.Points,

		InitialFaultCoverage: e.Initial.FaultCoverage(),
		DFTFaultCoverage:     e.Matrix.FaultCoverage(),
		InitialAvgOmegaDet:   e.Initial.AvgOmegaDet(),
		BruteAvgOmegaDet:     e.Brute.AvgOmegaDet,
		OptimalAvgOmegaDet:   e.ConfigOpt.Best.AvgOmegaDet,
		PartialAvgOmegaDet:   e.OpampOpt.AvgOmegaDet,

		OptimalSet:    e.ConfigOpt.Best.Labels,
		PartialOpamps: e.OpampOpt.Chosen,
		UsableConfigs: e.OpampOpt.UsableLabels,
		Undetectable:  e.ConfigOpt.Undetectable,
	}
	for _, r := range e.ConfigOpt.EssentialRows {
		s.EssentialConfigs = append(s.EssentialConfigs, e.Matrix.Configs[r].Label())
	}
	for _, c := range e.ConfigOpt.Candidates {
		s.CandidateSets = append(s.CandidateSets, c.Labels)
	}
	for i, cfg := range e.Matrix.Configs {
		s.ConfigLabels = append(s.ConfigLabels, cfg.Label())
		row := make([]int, len(e.Matrix.Det[i]))
		for j, d := range e.Matrix.Det[i] {
			if d {
				row[j] = 1
			}
		}
		s.DetMatrix = append(s.DetMatrix, row)
		s.OmegaMatrix = append(s.OmegaMatrix, append([]float64(nil), e.Matrix.Omega[i]...))
	}
	return s
}

// WriteJSON writes the summary as indented JSON.
func (e *Experiment) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e.Summary())
}
