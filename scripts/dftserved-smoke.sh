#!/usr/bin/env bash
# Smoke test for cmd/dftserved: boot the server on an ephemeral port with
# a disk-backed result store and sharded matrix builds, run a
# paper-biquad matrix job end to end under a fixed W3C traceparent,
# assert the trace ID propagates into the job's span tree, assert the
# identical resubmission is a cache hit, stream the matrix rows as
# NDJSON, then boot a second replica over the same store directory and
# assert it serves the first replica's result without simulating. Needs
# curl and python3 (for JSON field extraction). Exits non-zero on any
# failed assertion; CI runs this as the dftserved smoke job. When
# SMOKE_ARTIFACTS names a directory, the job trace, the trace listing and
# the SLO snapshot are saved there for upload.
set -euo pipefail

log() { echo "smoke: $*" >&2; }
fail() { log "FAIL: $*"; exit 1; }

workdir=$(mktemp -d)
server_pid=""
replica_pid=""
trap 'kill "$server_pid" "$replica_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/dftserved" ./cmd/dftserved

# wait_addr LOGFILE PID: scrape the "listening on" line for the base URL.
wait_addr() {
    local logfile=$1 pid=$2 addr
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^dftserved: listening on //p' "$logfile" | head -n1)
        if [ -n "$addr" ]; then echo "http://$addr"; return 0; fi
        kill -0 "$pid" 2>/dev/null || { cat "$logfile" >&2; return 1; }
        sleep 0.1
    done
    return 1
}

store_dir="$workdir/store"
"$workdir/dftserved" -addr 127.0.0.1:0 -workers 1 -timing \
    -store-dir "$store_dir" -shards 2 >"$workdir/server.log" 2>&1 &
server_pid=$!

# The server prints "dftserved: listening on 127.0.0.1:PORT" on boot.
base=$(wait_addr "$workdir/server.log" "$server_pid") || fail "server never reported its address"
log "server at $base (store $store_dir, 2 shards)"

json_field() { python3 -c "import json,sys; print(json.load(sys.stdin)$1)"; }

body='{"kind":"matrix","bench":"paper-biquad","options":{"points":31}}'

# A fixed W3C trace context; its trace ID must surface end to end.
trace_id=4bf92f3577b34da6a3ce929d0e0e4736
traceparent="00-$trace_id-00f067aa0ba902b7-01"

# Submit: must answer 201 with a job id carrying our trace identity.
resp=$(curl -sS -w '\n%{http_code}' -X POST -H "traceparent: $traceparent" -d "$body" "$base/v1/jobs")
code=${resp##*$'\n'}
[ "$code" = 201 ] || fail "submit: HTTP $code"
job_id=$(printf '%s' "${resp%$'\n'*}" | json_field "['id']")
got_trace=$(printf '%s' "${resp%$'\n'*}" | json_field "['trace_id']")
[ "$got_trace" = "$trace_id" ] || fail "job trace_id=$got_trace, inbound traceparent not adopted"
log "submitted $job_id under trace $trace_id"

# Poll until the job finishes.
state=queued
for _ in $(seq 1 300); do
    state=$(curl -sS "$base/v1/jobs/$job_id" | json_field "['state']")
    case "$state" in done|failed|canceled) break ;; esac
    sleep 0.1
done
[ "$state" = done ] || fail "job ended in state $state"

# Result: 200 with a non-degenerate matrix.
resp=$(curl -sS -w '\n%{http_code}' "$base/v1/jobs/$job_id/result")
code=${resp##*$'\n'}
[ "$code" = 200 ] || fail "result: HTTP $code"
coverage=$(printf '%s' "${resp%$'\n'*}" | json_field "['coverage']")
solves=$(printf '%s' "${resp%$'\n'*}" | json_field "['stats']['solves']")
log "matrix done: coverage=$coverage solves=$solves"
[ "$solves" != 0 ] || fail "matrix reports zero solves"

# Trace: the retained span tree must carry the inbound trace identity
# and reach the engine (a jobs.run span with detect.* children).
resp=$(curl -sS -w '\n%{http_code}' "$base/v1/jobs/$job_id/trace")
code=${resp##*$'\n'}
[ "$code" = 200 ] || fail "trace: HTTP $code"
trace_json=${resp%$'\n'*}
jt_id=$(printf '%s' "$trace_json" | json_field "['trace_id']")
[ "$jt_id" = "$trace_id" ] || fail "trace endpoint reports trace_id=$jt_id, want $trace_id"
printf '%s' "$trace_json" | grep -q '"jobs.run"' || fail "trace has no jobs.run span"
printf '%s' "$trace_json" | grep -q '"detect.' || fail "trace has no engine spans"
log "trace propagated end to end ($(printf '%s' "$trace_json" | json_field "['spans']") spans)"

# Save the observability artifacts when CI asked for them.
if [ -n "${SMOKE_ARTIFACTS:-}" ]; then
    mkdir -p "$SMOKE_ARTIFACTS"
    printf '%s' "$trace_json" > "$SMOKE_ARTIFACTS/job-trace.json"
    curl -sS "$base/v1/debug/traces" > "$SMOKE_ARTIFACTS/traces.json"
    curl -sS "$base/v1/debug/slo" > "$SMOKE_ARTIFACTS/slo.json"
    curl -sS "$base/healthz" > "$SMOKE_ARTIFACTS/healthz.json"
    log "artifacts saved to $SMOKE_ARTIFACTS"
fi

# Identical resubmission: served from the cache, already done.
resp=$(curl -sS -w '\n%{http_code}' -X POST -d "$body" "$base/v1/jobs")
code=${resp##*$'\n'}
[ "$code" = 201 ] || fail "resubmit: HTTP $code"
cached=$(printf '%s' "${resp%$'\n'*}" | json_field "['cached']")
state2=$(printf '%s' "${resp%$'\n'*}" | json_field "['state']")
[ "$cached" = True ] && [ "$state2" = done ] || fail "resubmit not a cache hit (cached=$cached state=$state2)"
log "resubmit was a cache hit"

# Metrics: non-empty exposition counting exactly one hit.
metrics=$(curl -sS "$base/metrics")
[ -n "$metrics" ] || fail "/metrics is empty"
echo "$metrics" | grep -q '^jobs_cache_hits_total 1$' || fail "jobs_cache_hits_total != 1"
echo "$metrics" | grep -q '^detect_solves_total ' || fail "detect_solves_total missing"

# Streaming: the NDJSON row stream must deliver one row per matrix
# config and a final aggregate equal to the plain result payload.
curl -sS "$base/v1/jobs/$job_id/result?stream=rows" > "$workdir/stream.ndjson"
curl -sS "$base/v1/jobs/$job_id/result" > "$workdir/result.json"
python3 - "$workdir/stream.ndjson" "$workdir/result.json" <<'PY' || fail "row stream inconsistent"
import json, sys
rows, result = [], None
with open(sys.argv[1]) as f:
    for line in f:
        ev = json.loads(line)
        if ev["type"] == "row":
            rows.append(ev["row"])
        elif ev["type"] == "result":
            result = ev["result"]
        else:
            sys.exit(f"stream error event: {ev}")
direct = json.load(open(sys.argv[2]))
assert result == direct, "streamed aggregate differs from GET /result"
assert len(rows) == len(direct["configs"]), (len(rows), len(direct["configs"]))
assert sorted(r["index"] for r in rows) == list(range(len(rows))), "row indices not a permutation"
for r in rows:
    assert r["config"] == direct["configs"][r["index"]]
PY
log "row stream delivered all $(python3 -c "import json;print(len(json.load(open('$workdir/result.json'))['configs']))") rows + aggregate"

# Layout pinning: submissions differing only in the matrix layout are
# distinct jobs (the layout is part of the cache key), yet their
# matrices must be bit-identical — the sparse factorization replays the
# dense elimination exactly.
submit_layout() {
    local layout=$1
    local resp code
    resp=$(curl -sS -w '\n%{http_code}' -X POST \
        -d "{\"kind\":\"matrix\",\"bench\":\"paper-biquad\",\"options\":{\"points\":31,\"layout\":\"$layout\"}}" \
        "$base/v1/jobs")
    code=${resp##*$'\n'}
    [ "$code" = 201 ] || fail "submit layout=$layout: HTTP $code"
    printf '%s' "${resp%$'\n'*}"
}
dense_id=$(submit_layout dense | json_field "['id']")
sparse_id=$(submit_layout sparse | json_field "['id']")
for id in "$dense_id" "$sparse_id"; do
    state=queued
    for _ in $(seq 1 300); do
        state=$(curl -sS "$base/v1/jobs/$id" | json_field "['state']")
        case "$state" in done|failed|canceled) break ;; esac
        sleep 0.1
    done
    [ "$state" = done ] || fail "layout job $id ended in state $state"
done
dense_key=$(curl -sS "$base/v1/jobs/$dense_id" | json_field "['key']")
sparse_key=$(curl -sS "$base/v1/jobs/$sparse_id" | json_field "['key']")
[ "$dense_key" != "$sparse_key" ] || fail "dense and sparse submissions share cache key $dense_key"
dense_matrix=$(curl -sS "$base/v1/jobs/$dense_id/result" | python3 -c \
    "import json,sys; r=json.load(sys.stdin); r.pop('stats',None); print(json.dumps(r,sort_keys=True))")
sparse_matrix=$(curl -sS "$base/v1/jobs/$sparse_id/result" | python3 -c \
    "import json,sys; r=json.load(sys.stdin); r.pop('stats',None); print(json.dumps(r,sort_keys=True))")
[ "$dense_matrix" = "$sparse_matrix" ] || fail "dense and sparse matrices differ"
log "layout pinning: distinct keys, bit-identical matrices"

# Shared store: a second replica over the same -store-dir must serve the
# first replica's result as a cache hit without ever reaching the engine.
"$workdir/dftserved" -addr 127.0.0.1:0 -workers 1 \
    -store-dir "$store_dir" >"$workdir/replica.log" 2>&1 &
replica_pid=$!
rbase=$(wait_addr "$workdir/replica.log" "$replica_pid") || fail "replica never reported its address"
log "replica at $rbase (same store)"
curl -sS "$rbase/healthz" | json_field "['store']['kind']" | grep -qx fs || fail "replica store kind != fs"
resp=$(curl -sS -w '\n%{http_code}' -X POST -d "$body" "$rbase/v1/jobs")
code=${resp##*$'\n'}
[ "$code" = 201 ] || fail "replica submit: HTTP $code"
rcached=$(printf '%s' "${resp%$'\n'*}" | json_field "['cached']")
rstate=$(printf '%s' "${resp%$'\n'*}" | json_field "['state']")
[ "$rcached" = True ] && [ "$rstate" = done ] || fail "replica missed the shared store (cached=$rcached state=$rstate)"
rmetrics=$(curl -sS "$rbase/metrics")
echo "$rmetrics" | grep -q '^jobs_cache_hits_total 1$' || fail "replica jobs_cache_hits_total != 1"
echo "$rmetrics" | grep -q '^detect_solves_total 0$' || fail "replica simulated despite the shared store"
rjob=$(printf '%s' "${resp%$'\n'*}" | json_field "['id']")
rcoverage=$(curl -sS "$rbase/v1/jobs/$rjob/result" | json_field "['coverage']")
[ "$rcoverage" = "$coverage" ] || fail "replica coverage $rcoverage != $coverage"
log "replica served the shared-store result: cache hit, zero solves"
kill -TERM "$replica_pid"
wait "$replica_pid" || fail "replica exited non-zero on SIGTERM"
replica_pid=""

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$server_pid"
wait "$server_pid" || fail "server exited non-zero on SIGTERM"
log "PASS"
