#!/usr/bin/env bash
# Smoke test for cmd/dftserved: boot the server on an ephemeral port,
# run a paper-biquad matrix job end to end under a fixed W3C traceparent,
# assert the trace ID propagates into the job's span tree, assert the
# identical resubmission is a cache hit, check /metrics, then shut down
# gracefully. Needs curl and python3 (for JSON field extraction). Exits
# non-zero on any failed assertion; CI runs this as the dftserved smoke
# job. When SMOKE_ARTIFACTS names a directory, the job trace, the trace
# listing and the SLO snapshot are saved there for upload.
set -euo pipefail

log() { echo "smoke: $*" >&2; }
fail() { log "FAIL: $*"; exit 1; }

workdir=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/dftserved" ./cmd/dftserved

"$workdir/dftserved" -addr 127.0.0.1:0 -workers 1 -timing >"$workdir/server.log" 2>&1 &
server_pid=$!

# The server prints "dftserved: listening on 127.0.0.1:PORT" on boot.
base=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^dftserved: listening on //p' "$workdir/server.log" | head -n1)
    if [ -n "$addr" ]; then base="http://$addr"; break; fi
    kill -0 "$server_pid" 2>/dev/null || { cat "$workdir/server.log" >&2; fail "server died on boot"; }
    sleep 0.1
done
[ -n "$base" ] || fail "server never reported its address"
log "server at $base"

json_field() { python3 -c "import json,sys; print(json.load(sys.stdin)$1)"; }

body='{"kind":"matrix","bench":"paper-biquad","options":{"points":31}}'

# A fixed W3C trace context; its trace ID must surface end to end.
trace_id=4bf92f3577b34da6a3ce929d0e0e4736
traceparent="00-$trace_id-00f067aa0ba902b7-01"

# Submit: must answer 201 with a job id carrying our trace identity.
resp=$(curl -sS -w '\n%{http_code}' -X POST -H "traceparent: $traceparent" -d "$body" "$base/v1/jobs")
code=${resp##*$'\n'}
[ "$code" = 201 ] || fail "submit: HTTP $code"
job_id=$(printf '%s' "${resp%$'\n'*}" | json_field "['id']")
got_trace=$(printf '%s' "${resp%$'\n'*}" | json_field "['trace_id']")
[ "$got_trace" = "$trace_id" ] || fail "job trace_id=$got_trace, inbound traceparent not adopted"
log "submitted $job_id under trace $trace_id"

# Poll until the job finishes.
state=queued
for _ in $(seq 1 300); do
    state=$(curl -sS "$base/v1/jobs/$job_id" | json_field "['state']")
    case "$state" in done|failed|canceled) break ;; esac
    sleep 0.1
done
[ "$state" = done ] || fail "job ended in state $state"

# Result: 200 with a non-degenerate matrix.
resp=$(curl -sS -w '\n%{http_code}' "$base/v1/jobs/$job_id/result")
code=${resp##*$'\n'}
[ "$code" = 200 ] || fail "result: HTTP $code"
coverage=$(printf '%s' "${resp%$'\n'*}" | json_field "['coverage']")
solves=$(printf '%s' "${resp%$'\n'*}" | json_field "['stats']['solves']")
log "matrix done: coverage=$coverage solves=$solves"
[ "$solves" != 0 ] || fail "matrix reports zero solves"

# Trace: the retained span tree must carry the inbound trace identity
# and reach the engine (a jobs.run span with detect.* children).
resp=$(curl -sS -w '\n%{http_code}' "$base/v1/jobs/$job_id/trace")
code=${resp##*$'\n'}
[ "$code" = 200 ] || fail "trace: HTTP $code"
trace_json=${resp%$'\n'*}
jt_id=$(printf '%s' "$trace_json" | json_field "['trace_id']")
[ "$jt_id" = "$trace_id" ] || fail "trace endpoint reports trace_id=$jt_id, want $trace_id"
printf '%s' "$trace_json" | grep -q '"jobs.run"' || fail "trace has no jobs.run span"
printf '%s' "$trace_json" | grep -q '"detect.' || fail "trace has no engine spans"
log "trace propagated end to end ($(printf '%s' "$trace_json" | json_field "['spans']") spans)"

# Save the observability artifacts when CI asked for them.
if [ -n "${SMOKE_ARTIFACTS:-}" ]; then
    mkdir -p "$SMOKE_ARTIFACTS"
    printf '%s' "$trace_json" > "$SMOKE_ARTIFACTS/job-trace.json"
    curl -sS "$base/v1/debug/traces" > "$SMOKE_ARTIFACTS/traces.json"
    curl -sS "$base/v1/debug/slo" > "$SMOKE_ARTIFACTS/slo.json"
    curl -sS "$base/healthz" > "$SMOKE_ARTIFACTS/healthz.json"
    log "artifacts saved to $SMOKE_ARTIFACTS"
fi

# Identical resubmission: served from the cache, already done.
resp=$(curl -sS -w '\n%{http_code}' -X POST -d "$body" "$base/v1/jobs")
code=${resp##*$'\n'}
[ "$code" = 201 ] || fail "resubmit: HTTP $code"
cached=$(printf '%s' "${resp%$'\n'*}" | json_field "['cached']")
state2=$(printf '%s' "${resp%$'\n'*}" | json_field "['state']")
[ "$cached" = True ] && [ "$state2" = done ] || fail "resubmit not a cache hit (cached=$cached state=$state2)"
log "resubmit was a cache hit"

# Metrics: non-empty exposition counting exactly one hit.
metrics=$(curl -sS "$base/metrics")
[ -n "$metrics" ] || fail "/metrics is empty"
echo "$metrics" | grep -q '^jobs_cache_hits_total 1$' || fail "jobs_cache_hits_total != 1"
echo "$metrics" | grep -q '^detect_solves_total ' || fail "detect_solves_total missing"

# Layout pinning: submissions differing only in the matrix layout are
# distinct jobs (the layout is part of the cache key), yet their
# matrices must be bit-identical — the sparse factorization replays the
# dense elimination exactly.
submit_layout() {
    local layout=$1
    local resp code
    resp=$(curl -sS -w '\n%{http_code}' -X POST \
        -d "{\"kind\":\"matrix\",\"bench\":\"paper-biquad\",\"options\":{\"points\":31,\"layout\":\"$layout\"}}" \
        "$base/v1/jobs")
    code=${resp##*$'\n'}
    [ "$code" = 201 ] || fail "submit layout=$layout: HTTP $code"
    printf '%s' "${resp%$'\n'*}"
}
dense_id=$(submit_layout dense | json_field "['id']")
sparse_id=$(submit_layout sparse | json_field "['id']")
for id in "$dense_id" "$sparse_id"; do
    state=queued
    for _ in $(seq 1 300); do
        state=$(curl -sS "$base/v1/jobs/$id" | json_field "['state']")
        case "$state" in done|failed|canceled) break ;; esac
        sleep 0.1
    done
    [ "$state" = done ] || fail "layout job $id ended in state $state"
done
dense_key=$(curl -sS "$base/v1/jobs/$dense_id" | json_field "['key']")
sparse_key=$(curl -sS "$base/v1/jobs/$sparse_id" | json_field "['key']")
[ "$dense_key" != "$sparse_key" ] || fail "dense and sparse submissions share cache key $dense_key"
dense_matrix=$(curl -sS "$base/v1/jobs/$dense_id/result" | python3 -c \
    "import json,sys; r=json.load(sys.stdin); r.pop('stats',None); print(json.dumps(r,sort_keys=True))")
sparse_matrix=$(curl -sS "$base/v1/jobs/$sparse_id/result" | python3 -c \
    "import json,sys; r=json.load(sys.stdin); r.pop('stats',None); print(json.dumps(r,sort_keys=True))")
[ "$dense_matrix" = "$sparse_matrix" ] || fail "dense and sparse matrices differ"
log "layout pinning: distinct keys, bit-identical matrices"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$server_pid"
wait "$server_pid" || fail "server exited non-zero on SIGTERM"
log "PASS"
