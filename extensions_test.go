package analogdft

import (
	"testing"
)

func TestDictionaryFacade(t *testing.T) {
	bench := PaperBiquad()
	faults := DeviationFaults(bench.Circuit, 0.2)
	region := Region{LoHz: 100, HiHz: 5600}
	mod, err := ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		t.Fatal(err)
	}
	dict, err := BuildDictionary(mod, []int{0, 1, 2}, faults, region,
		DiagnosisOptions{Points: 60, Bands: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dict.Resolution() <= 0 {
		t.Fatal("zero resolution")
	}
	// Through matrix rows.
	mx, err := BuildMatrix(mod, faults, Options{Points: 61, Region: region, MeasFloor: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	dict2, err := DictionaryFromRows(mod, mx, []int{1, 2}, DiagnosisOptions{Points: 60, Bands: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(dict2.Configs) != 2 {
		t.Fatal("row dictionary shape")
	}
}

func TestPenaltyFacade(t *testing.T) {
	bench := WithSinglePoleOpamps(PaperBiquad(), 1e5, 10)
	region := Region{LoHz: 100, HiHz: 1e6}
	mod, err := ApplySwitchParasitics(bench.Circuit, bench.Chain, DefaultSwitchModel)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := MeasureDegradation(bench.Circuit, mod, region, 61)
	if err != nil {
		t.Fatal(err)
	}
	if deg <= 0 || deg > 1 {
		t.Fatalf("degradation = %g out of plausible range", deg)
	}
	cmp, err := ComparePenalty(bench.Circuit, bench.Chain, []string{"OP1", "OP2"},
		DefaultSwitchModel, DefaultAreaModel, region, 61)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.PartialAreaOverhead >= cmp.FullAreaOverhead {
		t.Fatal("partial DFT must save area")
	}
	if cmp.FullDegradation <= 0 || cmp.PartialDegradation <= 0 {
		t.Fatal("degradation should be measurable with single-pole opamps")
	}
}

func TestToleranceFacade(t *testing.T) {
	bench := PaperBiquad()
	region := Region{LoHz: 100, HiHz: 5600}
	grid := Grid(region, 31)
	if len(grid) != 31 {
		t.Fatal("Grid length")
	}
	env, err := ToleranceEnvelope(bench.Circuit, grid, ToleranceSpec{PassiveTol: 0.02, Samples: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(env) != 31 {
		t.Fatal("envelope length")
	}
	profile, err := ToleranceProfile(env, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	faults := DeviationFaults(bench.Circuit, 0.2)
	row, err := EvaluateCircuit(bench.Circuit, faults, Options{
		Eps: 0.10, MeasFloor: 0.01, Region: region, Points: 31, EpsProfile: profile,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The ±2% envelope sits below the 20%-fault deviations of fR1/fR4:
	// they stay detectable.
	for _, e := range row.Evals {
		if e.Fault.ID == "fR1" && !e.Detectable {
			t.Error("fR1 lost under tolerance profile")
		}
	}
	eps, err := DeriveToleranceEps(bench.Circuit, region, 31,
		ToleranceSpec{PassiveTol: 0.02, Samples: 20, Seed: 3}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0 || eps > 0.5 {
		t.Fatalf("derived ε = %g", eps)
	}
}

func TestTestGenFacade(t *testing.T) {
	bench := PaperBiquad()
	faults := DeviationFaults(bench.Circuit, 0.2)
	region := Region{LoHz: 100, HiHz: 5600}
	plan, err := PlanTestFrequencies(bench.Circuit, faults, region,
		TestGenOptions{Points: 61, MeasFloor: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// In the functional configuration only fR1/fR4 are coverable.
	if len(plan.Covered) != 2 || plan.NumFreqs() == 0 {
		t.Fatalf("plan = %+v", plan)
	}
	mod, err := ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := PlanConfigurationTests(mod, []int{1, 2}, faults, region,
		TestGenOptions{Points: 61, MeasFloor: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatal("plan count")
	}
	covered := map[string]bool{}
	for _, p := range plans {
		for _, id := range p.Covered {
			covered[id] = true
		}
	}
	if len(covered) != len(faults) {
		t.Fatalf("optimized set plans cover %d of %d faults", len(covered), len(faults))
	}
}

func TestSensitivityFacade(t *testing.T) {
	bench := PaperBiquad()
	grid := Grid(Region{LoHz: 100, HiHz: 5600}, 21)
	profiles, err := AnalyzeSensitivity(bench.Circuit, grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 8 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	// R1 is a pure gain element: |S| ≈ 1 across the passband.
	for _, p := range profiles {
		if p.Component == "R1" && p.MaxAbs() < 0.9 {
			t.Errorf("R1 sensitivity %g, want ≈1", p.MaxAbs())
		}
	}
}

func TestSymbolicFacade(t *testing.T) {
	bench := PaperBiquad()
	r, err := FitTransferFunction(bench.Circuit, Region{LoHz: 100, HiHz: 1e6}, 81, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if r.DenOrder() != 2 {
		t.Fatalf("biquad model order = %d", r.DenOrder())
	}
	f0, q, ok := DominantPolePair(r.Poles())
	if !ok {
		t.Fatal("no conjugate pair")
	}
	if f0 < 9.5e3 || f0 > 10.5e3 || q < 1.9 || q > 2.1 {
		t.Fatalf("f0 = %g, Q = %g; want 10 kHz, 2", f0, q)
	}
}

func TestScheduleFacade(t *testing.T) {
	e := paperExperiment(t)
	var items []TestItem
	for _, r := range e.ConfigOpt.Best.Rows {
		items = append(items, TestItem{Config: e.Matrix.Configs[r], Freqs: []float64{1e3, 5e3}})
	}
	start := Configuration{Index: 0, N: 3}
	prog, err := ScheduleTests(items, start)
	if err != nil {
		t.Fatal(err)
	}
	if prog.TotalToggles() > NaiveToggleCount(items, start) {
		t.Fatal("schedule worse than naive")
	}
	if prog.TotalMeasurements() != 4 {
		t.Fatalf("measurements = %d", prog.TotalMeasurements())
	}
	if prog.Time(10, 1, 1) <= 0 {
		t.Fatal("zero program time")
	}
}

func TestNoiseAndGroupDelayFacade(t *testing.T) {
	bench := PaperBiquad()
	grid := Grid(Region{LoHz: 100, HiHz: 100e3}, 41)
	ns, err := OutputNoise(bench.Circuit, grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns.Density) != 41 || ns.TempK != 300 {
		t.Fatalf("noise spectrum shape: %d points, %g K", len(ns.Density), ns.TempK)
	}
	// Every one of the six resistors contributes.
	if len(ns.PerResistor) != 6 {
		t.Fatalf("contributors = %d", len(ns.PerResistor))
	}
	if IntegrateNoise(ns) <= 0 {
		t.Fatal("zero integrated noise")
	}
	resp, err := Sweep(bench.Circuit, SweepSpec{StartHz: 100, StopHz: 100e3, Points: 41})
	if err != nil {
		t.Fatal(err)
	}
	gd := GroupDelay(resp)
	if len(gd) != 41 {
		t.Fatal("group delay length")
	}
	// The biquad's group delay peaks near f0 (Q > 1).
	peakIdx := 0
	for i, v := range gd {
		if v > gd[peakIdx] {
			peakIdx = i
		}
	}
	f := resp.Freqs[peakIdx]
	if f < 5e3 || f > 20e3 {
		t.Fatalf("group delay peak at %g Hz, want near 10 kHz", f)
	}
}
