package analogdft

import (
	"strings"
	"testing"
)

func TestWithSinglePoleOpamps(t *testing.T) {
	b := PaperBiquad()
	sp := WithSinglePoleOpamps(b, 1e5, 10)
	for _, op := range sp.Circuit.Opamps() {
		if op.Model.String() != "single-pole" || op.A0 != 1e5 || op.PoleHz != 10 {
			t.Fatalf("opamp %s not converted: %+v", op.Name(), op)
		}
	}
	// Original untouched.
	for _, op := range b.Circuit.Opamps() {
		if op.Model.String() != "ideal" {
			t.Fatal("original bench mutated")
		}
	}
	if !strings.Contains(sp.Description, "single-pole") {
		t.Error("description not updated")
	}
	if len(OpampFaults(sp.Circuit, 0.01, 0.1)) != 6 {
		t.Error("opamp fault universe size")
	}
}

// TestRunOpampTest verifies the §3.1 claim structure: the transparent
// configuration detects opamp-internal faults and misses passive faults.
func TestRunOpampTest(t *testing.T) {
	// A0 = 1e5, pole = 10 Hz ⇒ GBW ≈ 1 MHz. Gain drop ×0.01 moves the
	// closed-loop buffer corner to ≈10 kHz; pole drop ×0.01 likewise.
	res, err := RunOpampTest(PaperBiquad(), 1e5, 10, 0.01, 0.01, 0.20, Options{Points: 121})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) != 6 {
		t.Fatalf("faults = %d", len(res.Faults))
	}
	// Every opamp fault is detectable in the transparent configuration.
	for _, e := range res.Transparent.Evals {
		if e.Err != nil {
			t.Fatalf("%s: %v", e.Fault.ID, e.Err)
		}
		if !e.Detectable {
			t.Errorf("opamp fault %s not detectable in transparent config", e.Fault.ID)
		}
	}
	if fc := res.Transparent.FaultCoverage(); fc != 1 {
		t.Errorf("transparent opamp-fault coverage = %g, want 1", fc)
	}
	// No passive fault is detectable in the transparent configuration
	// (the identity function does not involve the passive network).
	for _, e := range res.PassiveInTransparent.Evals {
		if e.Detectable {
			t.Errorf("passive fault %s detectable in transparent config", e.Fault.ID)
		}
	}
	if fc := res.PassiveInTransparent.FaultCoverage(); fc != 0 {
		t.Errorf("transparent passive coverage = %g, want 0", fc)
	}
}

func TestRunOpampTestNeedsOpamps(t *testing.T) {
	b := &Bench{Circuit: NewCircuit("none"), Chain: nil}
	b.Circuit.R("R1", "in", "out", 1e3)
	b.Circuit.R("R2", "out", "0", 1e3)
	b.Circuit.Input, b.Circuit.Output = "in", "out"
	if _, err := RunOpampTest(b, 1e5, 10, 0.01, 0.01, 0.2, Options{}); err == nil {
		t.Fatal("opamp-less bench accepted")
	}
}
