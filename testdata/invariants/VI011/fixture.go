// Fixture for VI011 slab-backed-matrices: the analysis layer allocating
// whole dense matrices instead of wrapping slab storage.
package fixture

import num "analogdft/internal/numeric"

// seeded: a fresh dense matrix per call, through an aliased import.
func freshMatrix(n int) *num.Matrix { return num.NewMatrix(n, n) }

// seeded: bound function value — the pass matches the resolved object,
// not the call syntax.
var build = num.Identity

// seeded: row-copying constructor.
func fromRows(rows [][]complex128) (*num.Matrix, error) { return num.FromRows(rows) }

// negative: wrapping caller-owned slab storage is the sanctioned path.
func viewMatrix(n int, slab []complex128) *num.Matrix { return num.MatrixView(n, slab) }

// negative: workspace-held matrices are reused, not reallocated.
func ensure(ws *num.Workspace, n int) { ws.Ensure(n) }
