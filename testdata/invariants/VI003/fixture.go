// Fixture for VI003 clone-free-fanout: the detect layer cloning circuits
// and building MNA systems instead of going through the pooled engine.
package fixture

import (
	"analogdft/internal/circuit"
	m2 "analogdft/internal/mna"
)

// seeded: building a fresh MNA system through an aliased import.
func build(c *circuit.Circuit) (*m2.System, error) { return m2.NewSystem(c) }

// seeded: Clone method call on a circuit.
func duplicate(c *circuit.Circuit) *circuit.Circuit { return c.Clone() }

// seeded: the method expression form is the same method.
var cloner = (*circuit.Circuit).Clone

// negative: a field or local named Clone is not the circuit method.
type job struct{ Clone bool }

func flag(j job) bool { return j.Clone }
