// Fixture for VI009 no-lock-across-blocking: no channel operation or
// solver call while a mutex is held.
package fixture

import (
	"sync"

	root "analogdft"
)

type pool struct {
	mu    sync.Mutex
	queue chan int
	last  *root.Result
}

// seeded: blocking send under the mutex.
func (p *pool) enqueue(v int) {
	p.mu.Lock()
	p.queue <- v
	p.mu.Unlock()
}

// seeded: blocking receive under a deferred unlock.
func (p *pool) dequeue() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return <-p.queue
}

// seeded: solver call inside the critical section.
func (p *pool) solve(mx *root.Matrix, chain []string, cost root.CostFunction) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	res, err := root.OptimizeContext(nil, mx, chain, cost)
	p.last = res
	return err
}

// negative: select with a default clause is the sanctioned non-blocking form.
func (p *pool) tryEnqueue(v int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.queue <- v:
		return true
	default:
		return false
	}
}

// negative: send after the unlock.
func (p *pool) enqueueLater(v int) {
	p.mu.Lock()
	v++
	p.mu.Unlock()
	p.queue <- v
}

// negative: a function literal body is not under the lexical lock.
func (p *pool) deferred(v int) func() {
	p.mu.Lock()
	defer p.mu.Unlock()
	return func() { p.queue <- v }
}
