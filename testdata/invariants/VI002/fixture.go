// Fixture for VI002 no-stray-prints: library code writing to stdout.
package fixture

import (
	"fmt"
	pf "fmt"
	"io"
)

// seeded: plain Println to stdout.
func noisy(n int) { fmt.Println("cells:", n) }

// seeded: aliased Printf is still the same object.
func noisyf(n int) { pf.Printf("%d\n", n) }

// seeded: binding the function value counts as a use.
var sink = fmt.Print

// negative: writer-directed output is the sanctioned form.
func quiet(w io.Writer, n int) { fmt.Fprintf(w, "cells: %d\n", n) }

// negative: Sprintf does not touch stdout.
func format(n int) string { return fmt.Sprintf("%d", n) }
