// Fixture for VI006 gated-clock-observation: clock-derived histogram
// observations must sit behind a TimingOn guard. The negatives encode
// the sanctioned guard idioms from the real tree.
package fixture

import (
	"time"

	"analogdft/internal/obs"
)

var h = obs.Reg().Histogram("fixture_seconds", "seeded fixture latency histogram", obs.TimeBuckets)

// seeded: unguarded observation of an elapsed duration.
func unguarded(t0 time.Time) { h.Observe(obs.Since(t0).Seconds()) }

// seeded: routing the duration through a local does not launder it.
func unguardedLocal(d time.Duration) {
	el := d.Seconds()
	h.Observe(el)
}

// negative: direct guard.
func guarded(t0 time.Time) {
	if obs.TimingOn() {
		h.Observe(obs.Since(t0).Seconds())
	}
}

// negative: guard through a local, observation in a deferred closure.
func guardedLocal(t0 time.Time) {
	timed := obs.TimingOn()
	if timed {
		defer func() { h.Observe(obs.Since(t0).Seconds()) }()
	}
}

// negative: early-return guard dominating the observation.
func guardedEarly(t0 time.Time) {
	if !obs.TimingOn() {
		return
	}
	h.Observe(obs.Since(t0).Seconds())
}

// negative: a caller-proved bool parameter is accepted as the guard.
func guardedParam(d time.Duration, timed bool) {
	if timed {
		h.Observe(d.Seconds())
	}
}

// negative: counts are not clock-derived.
func counts(n int) { h.Observe(float64(n)) }
