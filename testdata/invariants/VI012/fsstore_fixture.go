// Negative half of the VI012 fixture: files whose name starts with
// fsstore own the disk layout and may use os freely.
package fixture

import "os"

// negative: sanctioned — this file implements the disk store.
func writeAtomic(dir string, payload []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(payload)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		return os.Remove(tmp.Name())
	}
	return nil
}
