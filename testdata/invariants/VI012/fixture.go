// Fixture for VI012 store-confined-io: the job layer touching the
// filesystem outside the fsstore files instead of going through the
// Store seam.
package fixture

import (
	"io/fs"
	sys "os"
)

// seeded: reading a payload directly, through an aliased os import.
func readPayload(path string) ([]byte, error) { return sys.ReadFile(path) }

// seeded: bound function value — the pass matches the resolved object,
// not the call syntax.
var remove = sys.Remove

// seeded: io/fs is the same filesystem surface under another name.
func checkPath(p string) bool { return fs.ValidPath(p) }

// negative: plumbing a caller-provided reader is fine — only the os and
// io/fs packages are confined.
func capacity(payload []byte) int { return len(payload) }
