// Fixture for VI010 joined-goroutines: every goroutine in the job and
// detect layers needs a visible join.
package fixture

import "sync"

func work() {}

// seeded: fire-and-forget launch.
func leak() { go work() }

// seeded: an untracked closure is still untracked.
func leakClosure(n int) {
	go func() {
		for i := 0; i < n; i++ {
			work()
		}
	}()
}

// negative: WaitGroup discipline in the launching function.
func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// negative: the done-channel idiom — the goroutine closes a channel the
// launcher (or its caller) waits on.
func doneChannel() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}

// negative: a result-channel send is a join signal too.
func resultChannel() <-chan int {
	out := make(chan int, 1)
	go func() {
		work()
		out <- 1
	}()
	return out
}
