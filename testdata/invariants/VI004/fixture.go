// Fixture for VI004 cancellable-job-layer: the job layer reaching for
// the blocking simulation entry points instead of the ...Context forms.
package fixture

import (
	root "analogdft"
	"context"
)

// seeded: bound blocking entry points through an aliased root import.
var (
	evaluate = root.EvaluateCircuit
	build    = root.BuildMatrix
)

// seeded: direct blocking call.
func optimize(mx *root.Matrix, chain []string, cost root.CostFunction) (*root.Result, error) {
	return root.Optimize(mx, chain, cost)
}

// negative: the Context variants are the sanctioned path.
func optimizeCtx(ctx context.Context, mx *root.Matrix, chain []string, cost root.CostFunction) (*root.Result, error) {
	return root.OptimizeContext(ctx, mx, chain, cost)
}
