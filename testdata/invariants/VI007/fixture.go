// Fixture for VI007 context-threading: a context-receiving function must
// not manufacture context.Background/TODO. Span bookkeeping through obs
// is the one sanctioned exception.
package fixture

import (
	"context"

	"analogdft/internal/obs"
)

func work(ctx context.Context) error { return ctx.Err() }

// seeded: laundering the caller's context away.
func run(ctx context.Context) error { return work(context.Background()) }

// seeded: TODO is the same laundering with a different name.
func later(ctx context.Context) error { return work(context.TODO()) }

// negative: threading the parameter through.
func runOK(ctx context.Context) error { return work(ctx) }

// negative: entry points without a context parameter may start fresh.
func entry() error { return work(context.Background()) }

// negative: a Background handed straight into obs span plumbing builds a
// value carrier for a span tree that intentionally outlives the caller.
func trace(ctx context.Context) {
	t := obs.NewTracer()
	_, s := t.Start(context.Background(), "fixture")
	_ = obs.ContextWithSpan(context.Background(), s)
	s.End()
}
