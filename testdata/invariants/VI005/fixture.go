// Fixture for VI005 in-place-factorization: the analysis layer calling
// the matrix-cloning numeric.Factor.
package fixture

import num "analogdft/internal/numeric"

// seeded: bound function value through an aliased import.
var factor = num.Factor

// seeded: direct cloning factorization.
func factorNow(m *num.Matrix) (*num.LU, error) { return num.Factor(m) }

// negative: the in-place form is the sanctioned path.
func factorInPlace(m *num.Matrix, pivot []int) (num.LU, error) { return num.FactorInPlace(m, pivot) }
