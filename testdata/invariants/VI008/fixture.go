// Fixture for VI008 bounded-metric-labels: a With() label value must be
// provably drawn from a fixed string set.
package fixture

import (
	"fmt"

	"analogdft/internal/obs"
)

type kind string

const (
	kindEvaluate kind = "evaluate"
	kindMatrix   kind = "matrix"
)

var cv = obs.Reg().CounterVec("fixture_total", "seeded fixture counter", "kind")

// seeded: request-derived identity as a label value.
func bad(traceID string) { cv.With(traceID).Inc() }

// seeded: Sprintf with a request-derived string argument.
func badFormat(user string) { cv.With(fmt.Sprintf("u-%s", user)).Inc() }

// negative: the bounded vocabulary — constants, closed enums, their
// conversions, and numeric-only Sprintf.
func ok(k kind, status int) {
	cv.With("static").Inc()
	cv.With(string(kindEvaluate)).Inc()
	cv.With(string(k)).Inc()
	cv.With(fmt.Sprintf("%dxx", status/100)).Inc()
}

// negative: a local whose every assignment is bounded.
func okLocal(fallback bool) {
	label := "primary"
	if fallback {
		label = string(kindMatrix)
	}
	cv.With(label).Inc()
}
