// Second file of the VI001 fixture, so the determinism test can load the
// package under shuffled file orders.
package fixture

import "time"

// seeded: direct call in the second file.
func direct2() time.Time { return time.Now() }
