// Fixture for VI001 single-clock-source: an internal package reading the
// wall clock directly. The aliased import and the bound function value
// are the evasions the old string matcher missed.
package fixture

import (
	"time"
	clk "time"
)

// seeded: direct call through the canonical import name.
func direct() time.Time { return time.Now() }

// seeded: aliased import cannot hide the resolved object.
func aliased(t0 time.Time) time.Duration { return clk.Since(t0) }

// seeded: binding the function value is still a use.
var bound = time.Now

// negative: other time package functions are fine.
func parse(s string) (time.Time, error) { return time.Parse(time.RFC3339, s) }
