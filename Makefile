GO ?= go

.PHONY: build test race vet invariants lint verify bench bench-smoke serve-smoke benchdiff

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

# invariants enforces the repo-wide source rules with the type-aware
# multi-pass analyzer in internal/invariants (run
# `go run ./cmd/vetinvariants -list` for the VIxxx pass catalog). The
# JSON report lands in invariants-report.json for the CI artifact;
# findings are echoed to stderr so the log stays readable.
invariants:
	$(GO) run ./cmd/vetinvariants -json -o invariants-report.json .

# lint statically checks the reference deck; it must stay clean.
lint:
	$(GO) run ./cmd/netlint -Werror testdata/biquad.cir

# verify is the full gate: static checks, a clean build, and the whole
# test suite under the race detector. CI runs exactly this target.
verify: vet invariants lint build race

# bench runs the full benchmark suite three times with allocation stats
# and commits the aggregated result into the BENCH_<date>.json perf
# trajectory (see cmd/benchjson).
bench:
	$(GO) test -bench=. -benchmem -count=3 -run=^$$ -timeout 60m ./... \
		| $(GO) run ./cmd/benchjson -o BENCH_$$(date +%Y-%m-%d).json

# bench-smoke is the cheap CI variant: every benchmark runs exactly once.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ ./...

# serve-smoke boots dftserved on an ephemeral port, runs a matrix job end
# to end over HTTP under a fixed traceparent, asserts the trace ID
# propagates into the job's span tree, that the resubmission is a cache
# hit and that the server drains cleanly on SIGTERM.
serve-smoke:
	./scripts/dftserved-smoke.sh

# benchdiff compares the two freshest committed BENCH_*.json snapshots
# with noise-aware thresholds; exit 2 means at least one regression.
# CI runs this advisory plus an enforcing `-gate allocs` pass (allocation
# counts are deterministic, so they gate hard while ns/op stays advisory),
# and a cross-sectional `-dim layout=dense:sparse -gate allocs` pass that
# holds the sparse layout to never allocating more than dense within one
# snapshot.
benchdiff:
	$(GO) run ./cmd/benchdiff -dir .
	$(GO) run ./cmd/benchdiff -dir . -dim layout=dense:sparse -gate allocs
