GO ?= go

.PHONY: build test race vet verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the full gate: static checks, a clean build, and the whole
# test suite under the race detector. CI runs exactly this target.
verify: vet build race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
