package analogdft

import (
	"analogdft/internal/analysis"
	"analogdft/internal/bist"
	"analogdft/internal/diagnose"
	"analogdft/internal/multifault"
	"analogdft/internal/penalty"
	"analogdft/internal/schedule"
	"analogdft/internal/sensitivity"
	"analogdft/internal/symbolic"
	"analogdft/internal/testgen"
	"analogdft/internal/tolerance"
)

// Extension types: diagnosis dictionaries, DFT penalty models,
// process-tolerance analysis, test-frequency planning and sensitivity
// profiles.
type (
	// Dictionary is a fault dictionary over DFT configurations.
	Dictionary = diagnose.Dictionary
	// DiagnosisOptions parameterizes dictionary construction.
	DiagnosisOptions = diagnose.Options
	// Signature is a fault signature (ternary symbol per config/band).
	Signature = diagnose.Signature
	// SwitchModel describes configurable-opamp switch parasitics.
	SwitchModel = penalty.SwitchModel
	// AreaModel prices DFT silicon overhead.
	AreaModel = penalty.AreaModel
	// PenaltyComparison quantifies full vs partial DFT costs.
	PenaltyComparison = penalty.Comparison
	// ToleranceSpec parameterizes Monte Carlo process-tolerance analysis.
	ToleranceSpec = tolerance.Spec
	// TestPlan is a per-configuration minimal test-frequency plan.
	TestPlan = testgen.Plan
	// TestGenOptions parameterizes test-frequency selection.
	TestGenOptions = testgen.Options
	// SensitivityProfile is a per-component |T| sensitivity profile.
	SensitivityProfile = sensitivity.Profile
)

// Default penalty models.
var (
	// DefaultSwitchModel is a plausible CMOS transmission-gate budget.
	DefaultSwitchModel = penalty.DefaultSwitchModel
	// DefaultAreaModel reflects the duplicated-input-stage implementation.
	DefaultAreaModel = penalty.DefaultAreaModel
)

// BuildDictionary constructs a fault dictionary over the given
// configuration indices of a modified circuit.
func BuildDictionary(m *Modified, cfgIndices []int, faults FaultList, region Region, opts DiagnosisOptions) (*Dictionary, error) {
	return diagnose.Build(m, cfgIndices, faults, region, opts)
}

// DictionaryFromRows builds a dictionary over matrix rows (e.g. the
// optimized configuration set).
func DictionaryFromRows(m *Modified, mx *Matrix, rows []int, opts DiagnosisOptions) (*Dictionary, error) {
	return diagnose.FromMatrixRows(m, mx, rows, opts)
}

// ApplySwitchParasitics returns a copy of the circuit with the switch
// parasitics of the named (configurable) opamps in place.
func ApplySwitchParasitics(ckt *Circuit, opamps []string, m SwitchModel) (*Circuit, error) {
	return penalty.ApplyDegradation(ckt, opamps, m)
}

// MeasureDegradation returns the worst |ΔT/T| between an original and a
// modified circuit over a region — the performance-degradation metric of
// §4.3.
func MeasureDegradation(original, modified *Circuit, region Region, points int) (float64, error) {
	return penalty.Degradation(original, modified, region, points)
}

// ComparePenalty measures the full-DFT vs partial-DFT degradation and
// area overhead on a circuit with single-pole opamps.
func ComparePenalty(ckt *Circuit, allOpamps, chosen []string, sw SwitchModel, area AreaModel, region Region, points int) (*PenaltyComparison, error) {
	return penalty.Compare(ckt, allOpamps, chosen, sw, area, region, points)
}

// ToleranceEnvelope returns the per-frequency fault-free process
// deviation envelope over a grid.
func ToleranceEnvelope(ckt *Circuit, grid []float64, spec ToleranceSpec) ([]float64, error) {
	return tolerance.Envelope(ckt, grid, spec)
}

// DeriveToleranceEps derives the scalar detection tolerance ε from
// component tolerances (the principled version of the paper's "ε fixed at
// 10%").
func DeriveToleranceEps(ckt *Circuit, region Region, points int, spec ToleranceSpec, margin float64) (float64, error) {
	return tolerance.DeriveEps(ckt, region, points, spec, margin)
}

// ToleranceProfile scales an envelope into a detect EpsProfile.
func ToleranceProfile(env []float64, margin float64) ([]float64, error) {
	return tolerance.Profile(env, margin)
}

// PlanTestFrequencies selects a minimal test-frequency set for a fixed
// circuit configuration.
func PlanTestFrequencies(ckt *Circuit, faults FaultList, region Region, opts TestGenOptions) (*TestPlan, error) {
	return testgen.MinimalFrequencies(ckt, faults, region, opts)
}

// PlanConfigurationTests builds one plan per configuration index of a
// modified circuit.
func PlanConfigurationTests(m *Modified, cfgIndices []int, faults FaultList, region Region, opts TestGenOptions) ([]*TestPlan, error) {
	return testgen.PlanConfigurations(m, cfgIndices, faults, region, opts)
}

// AnalyzeSensitivity computes |T| sensitivity profiles for every passive
// component over a grid (the Slamani–Kaminska observability view of §2).
func AnalyzeSensitivity(ckt *Circuit, grid []float64, relStep float64) ([]*SensitivityProfile, error) {
	return sensitivity.Analyze(ckt, grid, relStep)
}

// Grid returns a log-spaced frequency grid for a region — convenience for
// the sensitivity and tolerance APIs.
func Grid(region Region, points int) []float64 {
	return region.Spec(points).Grid()
}

// Compile-time interface guard.
var _ = analysis.Region{}

// Characterization and scheduling extension types.
type (
	// Rational is a fitted rational transfer-function model.
	Rational = symbolic.Rational
	// TestItem is one schedulable test step (configuration + frequencies).
	TestItem = schedule.Item
	// TestProgram is an ordered multi-configuration test program.
	TestProgram = schedule.Program
)

// FitTransferFunction sweeps the circuit over the region and fits the
// smallest rational model within tol (Levy least squares + Durand–Kerner
// roots).
func FitTransferFunction(ckt *Circuit, region Region, points, maxOrder int, tol float64) (*Rational, error) {
	return symbolic.FitCircuit(ckt, region, points, maxOrder, tol)
}

// DominantPolePair extracts (f0, Q) from a pole set.
func DominantPolePair(poles []complex128) (f0, q float64, ok bool) {
	return symbolic.DominantPair(poles)
}

// ScheduleTests orders test items to minimize selection-line toggles from
// the given start configuration (exact for ≤16 items).
func ScheduleTests(items []TestItem, start Configuration) (*TestProgram, error) {
	return schedule.Build(items, start)
}

// NaiveToggleCount returns the toggle cost of the unoptimized item order.
func NaiveToggleCount(items []TestItem, start Configuration) int {
	return schedule.NaiveToggles(items, start)
}

// BIST extension types (§4.2's on-chip configuration generation).
type (
	// BISTModel prices the BIST hardware blocks in gate equivalents.
	BISTModel = bist.Model
	// BISTEstimate is a BIST hardware budget.
	BISTEstimate = bist.Estimate
)

// DefaultBISTModel is a plausible small-geometry gate-equivalent budget.
var DefaultBISTModel = bist.DefaultModel

// EstimateBIST budgets the on-chip hardware for a test program.
func EstimateBIST(m BISTModel, selLines, nConfigs, nFreqs int) (BISTEstimate, error) {
	return m.Estimate(selLines, nConfigs, nFreqs)
}

// BISTCost adapts the BIST budget as a 2nd-order requirement for Optimize.
func BISTCost(m BISTModel, selLines, freqsPerConfig int) CostFunction {
	return bist.CostFunction(m, selLines, freqsPerConfig)
}

// Double-fault extension types.
type (
	// FaultPair is a simultaneous pair of single faults.
	FaultPair = multifault.Pair
	// MultiFaultResult is a double-fault coverage/masking study.
	MultiFaultResult = multifault.Result
	// MultiFaultOptions parameterizes the double-fault study.
	MultiFaultOptions = multifault.Options
)

// PairFaults builds every unordered pair of distinct-component faults.
func PairFaults(faults FaultList) []FaultPair {
	return multifault.PairUniverse(faults)
}

// EvaluatePairs measures double-fault coverage and masking of the fault
// list under the given configuration indices.
func EvaluatePairs(m *Modified, cfgIndices []int, faults FaultList, region Region, opts MultiFaultOptions) (*MultiFaultResult, error) {
	return multifault.Evaluate(m, cfgIndices, faults, region, opts)
}

// NoiseSpectrum is the output-referred thermal-noise analysis result.
type NoiseSpectrum = analysis.NoiseSpectrum

// OutputNoise computes the output thermal-noise spectrum over a grid
// (SPICE-style .NOISE restricted to resistor Johnson noise; tempK 0
// selects 300 K).
func OutputNoise(ckt *Circuit, grid []float64, tempK float64) (*NoiseSpectrum, error) {
	return analysis.OutputNoise(ckt, grid, tempK)
}

// IntegrateNoise integrates a noise spectrum into an RMS voltage.
func IntegrateNoise(ns *NoiseSpectrum) float64 { return analysis.IntegrateNoise(ns) }

// GroupDelay returns τg(ω) = −dφ/dω per grid point of a response.
func GroupDelay(resp *Response) []float64 { return analysis.GroupDelay(resp) }
