module analogdft

go 1.22
